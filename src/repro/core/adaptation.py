"""Connectivity classification with hysteresis.

Venus needs a discrete notion of connection strength to pick its state
(Figure 2): STRONG puts it in hoarding, WEAK in write disconnected,
NONE in emulating.  The classification is derived from the transport's
shared bandwidth estimate; hysteresis prevents flapping between states
when the estimate hovers near the threshold.
"""

import enum


class ConnectionStrength(enum.Enum):
    STRONG = "strong"
    WEAK = "weak"
    NONE = "none"


class ConnectivityMonitor:
    """Maps (reachability, bandwidth estimate) to a strength class.

    ``strong_threshold_bps`` is the bandwidth above which a connection
    counts as strong; the default of 500 Kb/s classifies the paper's
    Ethernet and WaveLan (measured goodput >= 1 Mb/s on 1995 hosts) as
    strong and ISDN/Modem as weak.  Hysteresis:
    an established classification only changes when the estimate moves
    at least ``hysteresis`` (fraction) past the threshold.
    """

    def __init__(self, strong_threshold_bps=500_000.0, hysteresis=0.2):
        self.strong_threshold_bps = strong_threshold_bps
        self.hysteresis = hysteresis
        self._current = ConnectionStrength.NONE

    @property
    def current(self):
        return self._current

    def classify(self, reachable, bandwidth_bps):
        """Update and return the strength classification.

        ``bandwidth_bps`` may be None (no estimate yet): a reachable
        peer with unknown bandwidth is conservatively treated as weak —
        the write-disconnected state is safe at any speed, and the
        estimate firms up with the first transfers.
        """
        if not reachable:
            self._current = ConnectionStrength.NONE
            return self._current
        if bandwidth_bps is None:
            if self._current is ConnectionStrength.NONE:
                self._current = ConnectionStrength.WEAK
            return self._current
        up = self.strong_threshold_bps
        down = self.strong_threshold_bps
        if self._current is ConnectionStrength.STRONG:
            down *= (1.0 - self.hysteresis)
            self._current = (ConnectionStrength.STRONG
                             if bandwidth_bps >= down
                             else ConnectionStrength.WEAK)
        else:
            up *= (1.0 + self.hysteresis) \
                if self._current is ConnectionStrength.WEAK else 1.0
            self._current = (ConnectionStrength.STRONG
                             if bandwidth_bps >= up
                             else ConnectionStrength.WEAK)
        return self._current
