"""File reference traces: generation, simulation, and replay.

The paper's evaluation rests on file reference traces collected at CMU
in 1991-93 (the *ives*, *concord*, *holst*, *messiaen*, *purcell*
workstations).  Those traces are not available, so this package
generates seeded synthetic traces calibrated to the published
statistics: the Figure 11 segment table (references, updates,
unoptimized/optimized CML sizes, compressibility), the Figure 10
compressibility distribution, and the Figure 4 aging curves.

Three consumers:

* :mod:`repro.trace.simulator` — the trace-driven CML simulator (the
  paper's "Venus simulator"), which replays a trace through the real
  CML code without a live server;
* :mod:`repro.trace.replay` — trace replay against a live Venus on a
  simulated network, with the think-threshold (lambda) handling of
  section 6.2.1;
* the benchmark harness, which feeds both.
"""

from repro.trace.records import TraceOp, TraceRecord, TraceSegment
from repro.trace.generate import SegmentSpec, generate_segment, build_tree
from repro.trace.segments import (
    SEGMENT_SPECS,
    WEEK_TRACE_SPECS,
    segment_by_name,
    week_trace_by_name,
)
from repro.trace.simulator import CmlSimulator, SimulationReport
from repro.trace.replay import TraceReplayer, ReplayReport

__all__ = [
    "CmlSimulator",
    "ReplayReport",
    "SEGMENT_SPECS",
    "SegmentSpec",
    "SimulationReport",
    "TraceOp",
    "TraceRecord",
    "TraceReplayer",
    "TraceSegment",
    "WEEK_TRACE_SPECS",
    "build_tree",
    "generate_segment",
    "segment_by_name",
    "week_trace_by_name",
]
