"""Trace import/export.

Section 6.2.1: "The traces and the replay software can be exported."
Segments serialize to a line-oriented text format: a header, the tree,
and one record per line, so traces can be saved, shared, and replayed
elsewhere (or inspected with ordinary text tools).

Format::

    #repro-trace 1
    #name <name>
    #duration <seconds>
    T <dir|file> <size> <path>
    R <time> <op> <size> <path> [<to_path_or_target>] [<program>]
"""

from repro.trace.records import TraceOp, TraceRecord, TraceSegment

_FORMAT = "#repro-trace 1"
_NONE = "-"


def _quote(value):
    if value is None or value == "":
        return _NONE
    return str(value).replace(" ", "%20")


def _unquote(token):
    if token == _NONE:
        return None
    return token.replace("%20", " ")


def dump_trace(segment, stream):
    """Write ``segment`` to a text ``stream``."""
    stream.write(_FORMAT + "\n")
    stream.write("#name %s\n" % _quote(segment.name))
    stream.write("#duration %r\n" % segment.duration)
    for path in sorted(segment.tree):
        kind, size = segment.tree[path]
        stream.write("T %s %d %s\n" % (kind, size, _quote(path)))
    for record in segment.records:
        extra = record.to_path if record.op is TraceOp.RENAME \
            else record.target
        stream.write("R %r %s %d %s %s %s\n" % (
            record.time, record.op.value, record.size,
            _quote(record.path), _quote(extra), _quote(record.program)))


def load_trace(stream):
    """Read a segment previously written by :func:`dump_trace`."""
    header = stream.readline().rstrip("\n")
    if header != _FORMAT:
        raise ValueError("not a repro trace: %r" % header)
    name = "imported"
    duration = 0.0
    tree = {}
    records = []
    for line in stream:
        line = line.rstrip("\n")
        if not line:
            continue
        if line.startswith("#name "):
            name = _unquote(line[len("#name "):])
        elif line.startswith("#duration "):
            duration = float(line[len("#duration "):])
        elif line.startswith("T "):
            _t, kind, size, path = line.split(" ", 3)
            tree[_unquote(path)] = (kind, int(size))
        elif line.startswith("R "):
            parts = line.split(" ")
            _r, time_s, op_s, size_s, path_t, extra_t, program_t = parts
            op = TraceOp(op_s)
            record = TraceRecord(
                time=float(time_s), op=op, path=_unquote(path_t),
                size=int(size_s), program=_unquote(program_t))
            extra = _unquote(extra_t)
            if op is TraceOp.RENAME:
                record.to_path = extra
            else:
                record.target = extra
            records.append(record)
        else:
            raise ValueError("bad trace line: %r" % line)
    return TraceSegment(name=name, duration=duration,
                        records=records, tree=tree)


def save_trace(segment, path):
    """Write ``segment`` to the file at ``path``."""
    with open(path, "w") as stream:
        dump_trace(segment, stream)


def read_trace(path):
    """Load a segment from the file at ``path``."""
    with open(path) as stream:
        return load_trace(stream)
