"""Calibrated trace presets.

The four 45-minute replay segments target the Figure 11 table::

    Segment   Refs     Updates  Unopt KB  Opt KB  Compressibility
    Purcell    51681     519      2864     2625       8%
    Holst      61019     596      3402     2302      32%
    Messiaen   38342     188      6996     2184      69%
    Concord   160397    1273     34704     2247      94%

and their think-time structure targets the Figure 12 elapsed times at
think thresholds of 1 s and 10 s.  The five week-long traces target
Figure 4's absolute savings at A = 4 h (84 MB ives, 817 MB concord,
40 MB holst, 152 MB messiaen, 44 MB purcell) and its spread of curve
shapes: the interval distribution of overwrites determines how quickly
savings approach their maximum as the aging window grows.
"""

from repro.trace.generate import (
    SegmentSpec,
    WeekTraceSpec,
    generate_segment,
    generate_week_trace,
)

SEGMENT_SPECS = {
    "purcell": SegmentSpec(
        name="purcell", seed=11,
        target_references=51_681,
        oneshot_writes=436, oneshot_size=5_900,
        hot_files=4, edit_writes_per_file=8, edit_size=5_000,
        compile_runs=0,
        churn_triples=8, churn_size=8_000,
        dir_pairs=24,
        pauses_big=61, pauses_med=64,
        update_anchor=(0.30, 1.0),
    ),
    "holst": SegmentSpec(
        name="holst", seed=12,
        target_references=61_019,
        oneshot_writes=320, oneshot_size=7_300,
        hot_files=10, edit_writes_per_file=16, edit_size=5_500,
        compile_runs=0,
        churn_triples=48, churn_size=4_500,
        dir_pairs=12,
        pauses_big=38, pauses_med=218,
        update_anchor=(0.0, 0.16),
    ),
    "messiaen": SegmentSpec(
        name="messiaen", seed=13,
        target_references=38_342,
        oneshot_writes=50, oneshot_size=36_000,
        hot_files=8, edit_writes_per_file=14, edit_size=38_000,
        compile_runs=0,
        churn_triples=12, churn_size=16_000,
        dir_pairs=2,
        pauses_big=43, pauses_med=164,
        update_anchor=(0.05, 1.0),
    ),
    "concord": SegmentSpec(
        name="concord", seed=14,
        target_references=160_397,
        oneshot_writes=90, oneshot_size=16_000,
        hot_files=2, edit_writes_per_file=10, edit_size=20_000,
        compile_runs=45, compile_reads=40, compile_objs=24,
        obj_size=30_000,
        churn_triples=40, churn_size=30_000,
        dir_pairs=3,
        pauses_big=40, pauses_med=155,
        update_anchor=(0.25, 1.0),
    ),
}

# Week-long traces for the Figure 4 aging analysis.  Savings at
# A = 4 h (the curves' denominators): ives 84 MB, concord 817 MB,
# holst 40 MB, messiaen 152 MB, purcell 44 MB.  interval_median and
# interval_sigma shape each curve: small medians saturate early (the
# ~80%-at-300 s traces); large medians climb late (~30% at 300 s).
WEEK_TRACE_SPECS = {
    "ives": WeekTraceSpec(
        name="ives", seed=21,
        chains=500, writes_per_chain=14, write_size=14_000,
        interval_median=70.0, interval_sigma=1.7),
    "concord": WeekTraceSpec(
        name="concord", seed=22,
        chains=1500, writes_per_chain=32, write_size=18_000,
        interval_median=700.0, interval_sigma=1.5),
    "holst": WeekTraceSpec(
        name="holst", seed=23,
        chains=320, writes_per_chain=12, write_size=12_000,
        interval_median=200.0, interval_sigma=1.8),
    "messiaen": WeekTraceSpec(
        name="messiaen", seed=24,
        chains=600, writes_per_chain=18, write_size=16_000,
        interval_median=400.0, interval_sigma=1.6),
    "purcell": WeekTraceSpec(
        name="purcell", seed=25,
        chains=350, writes_per_chain=12, write_size=12_000,
        interval_median=120.0, interval_sigma=2.0),
}


def segment_by_name(name):
    """Generate the named 45-minute replay segment."""
    return generate_segment(SEGMENT_SPECS[name])


def week_trace_by_name(name):
    """Generate the named week-long aging-analysis trace."""
    return generate_week_trace(WEEK_TRACE_SPECS[name])
