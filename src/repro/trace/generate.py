"""Seeded synthetic trace generation.

A segment is assembled from *activities* resembling the workloads the
paper's traces captured on CMU workstations:

* **edit cycles** — a hot file is read, pondered over, and rewritten;
  successive stores of the same file cancel in the CML;
* **compile runs** — many sources are read and a set of object files
  rewritten; each run's objects overwrite the previous run's;
* **temp churn** — scratch files are created, written, and soon
  unlinked, annihilating completely under log optimization;
* **one-shot writes** — files written once (mail, saved data); these
  are incompressible;
* **browsing** — stats, lookups, reads and readdirs that dominate the
  reference count but produce no CML records;
* **directory work** — mkdir/rename/symlink sprinkled in.

Think time is explicit: bursts are separated by pauses drawn from the
spec's pause budget, so the think-threshold (lambda) sensitivity of
section 6.2.1 behaves like the paper's traces.  Everything is driven
by a named random stream, so a spec always generates the same trace.
"""

import random
from dataclasses import dataclass

from repro.trace.records import TraceOp, TraceRecord, TraceSegment


@dataclass
class SegmentSpec:
    """Parameters for one synthetic trace segment."""

    name: str
    seed: int = 0
    duration: float = 2700.0           # 45 minutes
    mount: str = "/coda/usr/trace"
    # tree shape ------------------------------------------------------
    n_dirs: int = 12
    n_source_files: int = 240
    source_size: int = 9_000           # mean bytes of a pre-existing file
    # activities --------------------------------------------------------
    hot_files: int = 4                 # files receiving repeated edits
    edit_writes_per_file: int = 10
    edit_size: int = 12_000
    compile_runs: int = 0
    compile_reads: int = 30            # sources read per run
    compile_objs: int = 12             # objects rewritten per run
    obj_size: int = 14_000
    churn_triples: int = 10            # create+write+unlink scratch files
    churn_size: int = 9_000
    churn_lifetime: float = 20.0       # seconds before the unlink
    oneshot_writes: int = 120          # files written exactly once
    oneshot_size: int = 11_000
    dir_pairs: int = 6                 # mkdir (+ later rmdir for half)
    # reference filler ----------------------------------------------------
    target_references: int = 50_000
    # think-time structure -------------------------------------------------
    pauses_big: int = 40               # pauses in [10 s, 60 s]
    pauses_med: int = 120              # pauses in [1 s, 10 s)
    micro_gap: float = 0.003           # seconds between ops inside bursts
    # where in [0,1) of the segment updates may fall; lets a preset be
    # front- or back-loaded to shape Begin-CML (Figure 14)
    update_anchor: tuple = (0.0, 1.0)

    def rng(self):
        # repro: allow[DET002] spec-level seed derivation: the seed string is
        # part of the published segment identity (Figure 11/14 tables), and no
        # simulator exists yet when a spec generates its trace.
        return random.Random("segment::%s::%s" % (self.name, self.seed))


def build_tree(spec, rng=None):
    """The pre-existing tree a segment runs against.

    Returns ``{path: ("dir", 0) | ("file", size)}`` including the mount
    root's subdirectories.
    """
    rng = rng or spec.rng()
    tree = {}
    dirs = []
    for d in range(spec.n_dirs):
        path = "%s/d%02d" % (spec.mount, d)
        tree[path] = ("dir", 0)
        dirs.append(path)
    for i in range(spec.n_source_files):
        directory = dirs[i % len(dirs)]
        size = max(256, int(rng.lognormvariate(0.0, 0.7)
                            * spec.source_size))
        tree["%s/src%04d.c" % (directory, i)] = ("file", size)
    return tree


class _Burst:
    """A group of operations issued closely together."""

    def __init__(self, ops, anchor=None):
        self.ops = ops          # list of (op_fn_args) tuples sans time
        self.anchor = anchor    # preferred position in [0,1), or None


def generate_segment(spec):
    """Generate the trace for ``spec``; returns a TraceSegment."""
    rng = spec.rng()
    tree = build_tree(spec, rng=rng)
    dirs = sorted(p for p, (kind, _s) in tree.items() if kind == "dir")
    sources = sorted(p for p, (kind, _s) in tree.items() if kind == "file")
    bursts = []

    def jitter(mean):
        return max(128, int(rng.expovariate(1.0 / mean)))

    def update_anchor():
        return rng.uniform(*spec.update_anchor)

    # Edit cycles: writes to each hot file spread across the segment.
    hot = rng.sample(sources, min(spec.hot_files, len(sources)))
    for path in hot:
        for _ in range(spec.edit_writes_per_file):
            ops = [(TraceOp.READ, path, 0, "emacs"),
                   (TraceOp.WRITE, path, jitter(spec.edit_size), "emacs")]
            bursts.append(_Burst(ops, anchor=update_anchor()))

    # Compile runs: read sources, rewrite the same object files.
    obj_dir = dirs[0]
    for _run in range(spec.compile_runs):
        ops = []
        for path in rng.sample(sources,
                               min(spec.compile_reads, len(sources))):
            ops.append((TraceOp.READ, path, 0, "cc"))
        for obj in range(spec.compile_objs):
            ops.append((TraceOp.WRITE, "%s/obj%03d.o" % (obj_dir, obj),
                        jitter(spec.obj_size), "cc"))
        bursts.append(_Burst(ops, anchor=update_anchor()))

    # Temp churn: create, write, unlink.
    tmp_dir = dirs[-1]
    for i in range(spec.churn_triples):
        path = "%s/tmp%05d" % (tmp_dir, i)
        ops = [(TraceOp.WRITE, path, jitter(spec.churn_size), "sort"),
               ("PAUSE", min(spec.churn_lifetime, 9.0), None, None),
               (TraceOp.UNLINK, path, 0, "sort")]
        bursts.append(_Burst(ops, anchor=update_anchor()))

    # One-shot writes.
    for i in range(spec.oneshot_writes):
        directory = dirs[i % len(dirs)]
        path = "%s/out%05d.dat" % (directory, i)
        ops = [(TraceOp.WRITE, path, jitter(spec.oneshot_size), "write")]
        bursts.append(_Burst(ops, anchor=update_anchor()))

    # Directory work.
    for i in range(spec.dir_pairs):
        path = "%s/work%03d" % (dirs[i % len(dirs)], i)
        ops = [(TraceOp.MKDIR, path, 0, "mkdir")]
        if i % 2 == 0:
            ops.append(("PAUSE", 5.0, None, None))
            ops.append((TraceOp.RMDIR, path, 0, "rmdir"))
        bursts.append(_Burst(ops, anchor=update_anchor()))

    # Browsing filler to reach the reference target.
    planned = sum(len(b.ops) for b in bursts)
    missing = max(0, spec.target_references - planned)
    browse_ops = (TraceOp.STAT, TraceOp.LOOKUP, TraceOp.READ,
                  TraceOp.READDIR)
    while missing > 0:
        burst_len = min(missing, rng.randint(20, 120))
        ops = []
        for _ in range(burst_len):
            op = rng.choice(browse_ops)
            if op is TraceOp.READDIR:
                ops.append((op, rng.choice(dirs), 0, "ls"))
            else:
                ops.append((op, rng.choice(sources), 0,
                            rng.choice(("csh", "grep", "more", "make"))))
        bursts.append(_Burst(ops, anchor=rng.random()))
        missing -= burst_len

    # ---- Assign timestamps -------------------------------------------
    # Bursts are laid out by anchor; pauses from the budget separate
    # them; micro-gaps separate ops within a burst.
    bursts.sort(key=lambda b: (b.anchor if b.anchor is not None
                               else rng.random()))
    pauses = ([rng.uniform(10.0, 60.0) for _ in range(spec.pauses_big)]
              + [rng.uniform(1.0, 10.0) for _ in range(spec.pauses_med)])
    rng.shuffle(pauses)
    # Spread the pause budget over burst boundaries.
    boundaries = len(bursts)
    pause_at = {}
    for index, pause in enumerate(pauses):
        slot = rng.randrange(boundaries) if boundaries else 0
        pause_at[slot] = pause_at.get(slot, 0.0) + pause

    records = []
    now = 0.0
    for index, burst in enumerate(bursts):
        now += pause_at.get(index, 0.0)
        for op in burst.ops:
            if op[0] == "PAUSE":
                now += op[1]
                continue
            kind, path, size, program = op
            now += rng.uniform(0.5, 1.5) * spec.micro_gap
            records.append(TraceRecord(time=now, op=kind, path=path,
                                       size=size, program=program))
    # Normalize to the requested duration.
    if records and records[-1].time > 0:
        scale = spec.duration / records[-1].time
        if scale < 1.0:
            for record in records:
                record.time *= scale
    return TraceSegment(name=spec.name, duration=spec.duration,
                        records=records, tree=tree, spec=spec)


@dataclass
class WeekTraceSpec:
    """A week-long update stream for the Figure 4 aging analysis.

    Only updates matter to the analysis, so the generator emits
    overwrite chains directly: each chain is a file stored repeatedly
    with inter-write intervals drawn log-normally.  ``interval_median``
    and ``interval_sigma`` shape the trace's Figure 4 curve; chains and
    sizes set the absolute savings (the figure's denominator).
    """

    name: str
    seed: int = 0
    duration: float = 7 * 86_400.0
    chains: int = 400                 # overwrite chains
    writes_per_chain: int = 12
    write_size: int = 24_000
    interval_median: float = 120.0    # seconds between overwrites
    interval_sigma: float = 1.6       # lognormal sigma
    churn_fraction: float = 0.25      # chains ending in an unlink
    mount: str = "/coda/usr/trace"

    def rng(self):
        # repro: allow[DET002] week-trace seed derivation: same contract as
        # SegmentSpec.rng — a stable pre-simulation seed string frozen by the
        # Figure 4 aging tables.
        return random.Random("week::%s::%s" % (self.name, self.seed))


def generate_week_trace(spec):
    """Generate the update stream for a week-long trace spec."""
    import math
    rng = spec.rng()
    records = []
    tree = {"%s/w" % spec.mount: ("dir", 0)}
    mu = math.log(spec.interval_median)
    for chain in range(spec.chains):
        path = "%s/w/f%05d" % (spec.mount, chain)
        tree[path] = ("file", spec.write_size)
        start = rng.uniform(0.0, spec.duration * 0.9)
        now = start
        for _write in range(spec.writes_per_chain):
            size = max(256, int(rng.expovariate(1.0 / spec.write_size)))
            records.append(TraceRecord(time=now, op=TraceOp.WRITE,
                                       path=path, size=size,
                                       program="emacs"))
            now += rng.lognormvariate(mu, spec.interval_sigma)
            if now > spec.duration:
                break
        if rng.random() < spec.churn_fraction and now <= spec.duration:
            records.append(TraceRecord(time=now, op=TraceOp.UNLINK,
                                       path=path, program="rm"))
    records.sort(key=lambda record: record.time)
    return TraceSegment(name=spec.name, duration=spec.duration,
                        records=records, tree=tree, spec=spec)
