"""The trace-driven CML simulator (the paper's "Venus simulator").

Section 4.3.4: "The traces were used as input to a Venus simulator.
This simulator is the actual Venus code, modified to accept requests
from a trace."  Here, likewise, the *actual* CML implementation
(:class:`repro.venus.cml.ClientModifyLog`) is driven from a trace with
no live server: before each record is appended, records older than the
aging window are deemed reintegrated and removed, exactly modelling a
trickle daemon with ample bandwidth.

Outputs: the data saved by optimizations (the Figure 4 metric), the
final CML size, and the Figure 11 characteristics (references,
updates, unoptimized/optimized CML, compressibility).
"""

from dataclasses import dataclass
from itertools import count

from repro.fs.content import SyntheticContent
from repro.fs.fid import Fid
from repro.trace.records import TraceOp
from repro.venus.cml import ClientModifyLog, CmlOp, CmlRecord


@dataclass
class SimulationReport:
    """What one simulator run observed."""

    trace: str
    aging_window: float
    references: int
    updates: int
    appended_bytes: int         # unoptimized CML volume
    optimized_bytes: int        # data saved by optimizations
    reintegrated_bytes: int     # data aged out (shipped)
    final_cml_bytes: int        # left in the log at the end

    @property
    def compressibility(self):
        """optimized / unoptimized, the Figure 10/11 metric."""
        if not self.appended_bytes:
            return 0.0
        return self.optimized_bytes / self.appended_bytes

    @property
    def optimized_cml_bytes(self):
        """What the CML would hold with no reintegration at all."""
        return self.appended_bytes - self.optimized_bytes


class _PathTable:
    """Path -> fid bookkeeping for a serverless replay."""

    def __init__(self, volid=1):
        self.volid = volid
        self._fids = {}
        self._dir_fids = {}
        self._counter = count(1)

    def dir_fid(self, path):
        directory = path.rsplit("/", 1)[0] if "/" in path else "/"
        fid = self._dir_fids.get(directory)
        if fid is None:
            fid = self._alloc()
            self._dir_fids[directory] = fid
        return fid

    def fid(self, path, create=False):
        fid = self._fids.get(path)
        if fid is None and create:
            fid = self._alloc()
            self._fids[path] = fid
        return fid

    def forget(self, path):
        return self._fids.pop(path, None)

    def rename(self, old, new):
        fid = self._fids.pop(old, None)
        if fid is not None:
            self._fids[new] = fid
        return fid

    def _alloc(self):
        n = next(self._counter)
        return Fid(self.volid, n, n)


class CmlSimulator:
    """Runs traces through the real CML code with an aging window."""

    def __init__(self, aging_window=600.0, log_optimizations=True):
        self.aging_window = aging_window
        self.log_optimizations = log_optimizations

    def run(self, segment, preexisting=True):
        """Simulate ``segment``; returns a :class:`SimulationReport`.

        ``preexisting`` marks tree files as already known to the
        server, so their first store is an overwrite rather than a
        create.
        """
        cml = ClientModifyLog()
        paths = _PathTable()
        known = set()
        if preexisting:
            for path, (kind, _size) in segment.tree.items():
                if kind == "file":
                    paths.fid(path, create=True)
                    known.add(path)
        updates = 0
        for record in segment.records:
            self._age_out(cml, record.time)
            if not record.is_update:
                continue
            updates += 1
            self._apply(cml, paths, known, record)
        # Final age-out at the end of the trace.
        self._age_out(cml, segment.duration)
        stats = cml.stats
        return SimulationReport(
            trace=segment.name,
            aging_window=self.aging_window,
            references=segment.references,
            updates=updates,
            appended_bytes=stats.appended_bytes,
            optimized_bytes=stats.optimized_bytes,
            reintegrated_bytes=stats.reintegrated_bytes,
            final_cml_bytes=cml.size_bytes)

    # ------------------------------------------------------------------

    def _age_out(self, cml, now):
        """Reintegrate (remove) every record older than the window."""
        eligible = cml.eligible_records(now, self.aging_window)
        if eligible:
            cml.freeze(len(eligible))
            cml.commit_frozen()

    def _append(self, cml, record, now):
        if self.log_optimizations:
            cml.append(record, now)
        else:
            record.time = now
            record.seqno = next(cml._seq)
            cml.stats.appended_records += 1
            cml.stats.appended_bytes += record.size
            cml._records.append(record)

    def _apply(self, cml, paths, known, record):
        op = record.op
        now = record.time
        if op is TraceOp.WRITE or op is TraceOp.CREATE:
            fresh = record.path not in known
            fid = paths.fid(record.path, create=True)
            if fresh:
                known.add(record.path)
                self._append(cml, CmlRecord(
                    op=CmlOp.CREATE, fid=fid,
                    parent=paths.dir_fid(record.path),
                    name=record.path.rsplit("/", 1)[-1]), now)
            if op is TraceOp.WRITE:
                self._append(cml, CmlRecord(
                    op=CmlOp.STORE, fid=fid,
                    content=SyntheticContent(record.size)), now)
        elif op is TraceOp.UNLINK:
            fid = paths.fid(record.path)
            if fid is None:
                return
            self._append(cml, CmlRecord(
                op=CmlOp.UNLINK, fid=fid,
                parent=paths.dir_fid(record.path),
                name=record.path.rsplit("/", 1)[-1]), now)
            paths.forget(record.path)
            known.discard(record.path)
        elif op is TraceOp.MKDIR:
            fid = paths.fid(record.path, create=True)
            known.add(record.path)
            self._append(cml, CmlRecord(
                op=CmlOp.MKDIR, fid=fid,
                parent=paths.dir_fid(record.path),
                name=record.path.rsplit("/", 1)[-1]), now)
        elif op is TraceOp.RMDIR:
            fid = paths.fid(record.path)
            if fid is None:
                return
            self._append(cml, CmlRecord(
                op=CmlOp.RMDIR, fid=fid,
                parent=paths.dir_fid(record.path),
                name=record.path.rsplit("/", 1)[-1]), now)
            paths.forget(record.path)
            known.discard(record.path)
        elif op is TraceOp.RENAME:
            fid = paths.fid(record.path)
            if fid is None:
                return
            self._append(cml, CmlRecord(
                op=CmlOp.RENAME, fid=fid,
                parent=paths.dir_fid(record.path),
                name=record.path.rsplit("/", 1)[-1],
                to_parent=paths.dir_fid(record.to_path),
                to_name=record.to_path.rsplit("/", 1)[-1]), now)
            paths.rename(record.path, record.to_path)
        elif op is TraceOp.SYMLINK:
            fid = paths.fid(record.path, create=True)
            self._append(cml, CmlRecord(
                op=CmlOp.SYMLINK, fid=fid,
                parent=paths.dir_fid(record.path),
                name=record.path.rsplit("/", 1)[-1],
                target=record.target), now)
        elif op is TraceOp.SETATTR:
            fid = paths.fid(record.path)
            if fid is None:
                return
            self._append(cml, CmlRecord(
                op=CmlOp.SETATTR, fid=fid, attrs={}), now)


def savings_curve(segment, aging_windows, log_optimizations=True):
    """Optimization savings for each aging window (Figure 4's metric).

    Returns ``{A: optimized_bytes}``.
    """
    results = {}
    for window in aging_windows:
        simulator = CmlSimulator(aging_window=window,
                                 log_optimizations=log_optimizations)
        results[window] = simulator.run(segment).optimized_bytes
    return results
