"""Trace record schema.

Coda uses the open-close session semantics of AFS, so traces record
whole-file sessions, not individual reads and writes: "Updates ...
only refers to operations such as close after write, and mkdir.
References includes, in addition, operations such as close after read,
stat, and lookup" (Figure 11's caption).
"""

import enum
from dataclasses import dataclass
from typing import Optional


class TraceOp(enum.Enum):
    READ = "read"          # close after read (whole-file session)
    WRITE = "write"        # close after write
    STAT = "stat"
    LOOKUP = "lookup"
    READDIR = "readdir"
    MKDIR = "mkdir"
    RMDIR = "rmdir"
    CREATE = "create"      # creat() without data (empty file)
    UNLINK = "unlink"
    RENAME = "rename"
    SYMLINK = "symlink"
    SETATTR = "setattr"


#: Operations that mutate state (the "Updates" column of Figure 11).
UPDATE_OPS = frozenset({
    TraceOp.WRITE, TraceOp.MKDIR, TraceOp.RMDIR, TraceOp.CREATE,
    TraceOp.UNLINK, TraceOp.RENAME, TraceOp.SYMLINK, TraceOp.SETATTR,
})


@dataclass
class TraceRecord:
    """One traced file system operation."""

    time: float
    op: TraceOp
    path: str
    size: int = 0                      # bytes, for WRITE
    to_path: Optional[str] = None      # RENAME destination
    target: Optional[str] = None       # SYMLINK target
    program: Optional[str] = None      # referencing program (Figure 5)

    @property
    def is_update(self):
        return self.op in UPDATE_OPS


@dataclass
class TraceSegment:
    """A generated trace plus the tree it runs against."""

    name: str
    duration: float
    records: list
    tree: dict                  # path -> ("dir", 0) | ("file", size)
    spec: object = None

    @property
    def references(self):
        return len(self.records)

    @property
    def updates(self):
        return sum(1 for record in self.records if record.is_update)

    def think_time_above(self, threshold):
        """Total trace delay preserved at think threshold ``threshold``."""
        preserved = 0.0
        last = 0.0
        for record in self.records:
            gap = record.time - last
            if gap >= threshold:
                preserved += gap
            last = record.time
        return preserved

    def slice_after(self, start_time):
        """Records at or after ``start_time`` (for warm-up splits)."""
        return [record for record in self.records
                if record.time >= start_time]
