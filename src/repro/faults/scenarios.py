"""Canned fault scenarios for ``repro faults`` and the test suite.

The scenarios are declarative specs in the shipped catalogue
(:mod:`repro.spec.catalog`) — each carries its
:class:`~repro.faults.plan.FaultPlan` as plain fault rows — and this
module keeps the faults subsystem's historical API as thin wrappers
over the spec compiler.  Each run builds the standard one-client
testbed, arms a :class:`~repro.faults.injector.FaultInjector`, runs
the deterministic workload through the faults, and returns the
finished testbed (with the injector attached as ``testbed.faults``).
All file contents carry explicit tags so that two runs of the same
scenario produce byte-identical namespace digests — the determinism
tests depend on it.
"""

from repro.obs.scenarios import MOUNT, _probe_schedule, scenario_seed
from repro.obs.scenarios import fingerprint as obs_fingerprint
from repro.spec.catalog import get
from repro.spec.compile import run_script_spec

__all__ = ["FAULT_SCENARIOS", "MOUNT", "_probe_schedule",
           "fault_fingerprint", "namespace_digest", "run_fault_scenario",
           "scenario_seed", "smoke_scenario", "client_crash_scenario",
           "server_crash_scenario"]


def namespace_digest(server):
    """Canonical, hashable digest of the server's whole namespace.

    Paths, object types, versions, content fingerprints, symlink
    targets, and directory listings — everything except mtimes, which
    legitimately differ between an interrupted and an uninterrupted
    run.  Two servers with equal digests hold the same files.
    """
    volumes = []
    for volume in sorted(server.registry.volumes(), key=lambda v: v.volid):
        prefix = "/" + "/".join(server.registry.mount_of(volume))
        rows = {}
        stack = [(volume.root, prefix)]
        while stack:
            vnode, path = stack.pop()
            rows[path] = (
                vnode.otype.value,
                vnode.version,
                vnode.content.fingerprint
                if vnode.content is not None else None,
                vnode.target,
                tuple(sorted(vnode.children)) if vnode.children else None,
            )
            if vnode.children:
                for name, child_fid in vnode.children.items():
                    child = volume.get(child_fid)
                    if child is not None:
                        stack.append((child, path + "/" + name))
        volumes.append((volume.volid, volume.stamp,
                        tuple(sorted(rows.items()))))
    return tuple(volumes)


def fault_fingerprint(testbed):
    """The obs fingerprint extended with fault/recovery final state."""
    digest = obs_fingerprint(testbed)
    server = testbed.server
    digest["server_namespace"] = namespace_digest(server)
    digest["server_crashes"] = server.crashes
    digest["reintegration_duplicates"] = \
        server.reintegrator.duplicates_skipped
    injector = getattr(testbed, "faults", None)
    if injector is not None:
        digest["fault_log"] = tuple(injector.log)
    return digest


def _fault_wrapper(name):
    def scenario(observatory=None, schedule_log=None, plan=None,
                 checker=None, seed=0):
        return run_script_spec(get(name), observatory=observatory,
                               schedule_log=schedule_log, checker=checker,
                               seed=seed, plan=plan)
    return scenario


def smoke_scenario(observatory=None, schedule_log=None, plan=None,
                   checker=None, seed=0):
    """Everything once, briefly: outage, loss burst, client crash.

    A write-disconnected modem client logs updates through a link
    outage and a loss burst, crashes mid-trickle with records still in
    the CML, restarts from its RVM snapshot, reconnects, and drains.
    Fast enough for CI.
    """
    return _fault_wrapper("smoke")(observatory, schedule_log, plan,
                                   checker, seed)


def client_crash_scenario(observatory=None, schedule_log=None, plan=None,
                          checker=None, seed=0):
    """A client dies mid-trickle and resumes from the barrier.

    A large store is being trickled when Venus crashes; the restart
    replays the persisted CML, revalidates rapidly (stamps survive),
    and finishes shipping without applying anything twice.
    """
    return _fault_wrapper("client-crash")(observatory, schedule_log, plan,
                                          checker, seed)


def server_crash_scenario(observatory=None, schedule_log=None, plan=None,
                          checker=None, seed=0):
    """A server dies mid-reintegration and comes back 30 s later.

    The store (namespace, volume stamps, applied-record marks)
    survives; callbacks and fragment state do not.  The client rides
    out the outage as a disconnection, revalidates rapidly against the
    surviving stamps on reconnection, and reintegration completes with
    every CML record applied exactly once.
    """
    return _fault_wrapper("server-crash")(observatory, schedule_log, plan,
                                          checker, seed)


FAULT_SCENARIOS = {
    "smoke": smoke_scenario,
    "client-crash": client_crash_scenario,
    "server-crash": server_crash_scenario,
}


def run_fault_scenario(name, observatory=None, schedule_log=None,
                       plan=None, checker=None, seed=None):
    """Run fault scenario ``name``; returns the finished testbed.

    ``plan`` overrides the spec's scripted fault plan (tests build
    bespoke plans this way).  ``checker`` optionally attaches an
    :class:`~repro.analysis.invariants.InvariantChecker` to the testbed
    before the workload runs (requires ``observatory``).  ``seed``
    selects an alternate stream universe via
    :func:`~repro.spec.seeds.scenario_seed` (kind ``"faults"``); the
    default None keeps the canonical (golden-pinned) streams.
    """
    try:
        scenario = FAULT_SCENARIOS[name]
    except KeyError:
        raise ValueError("unknown fault scenario %r (have %s)"
                         % (name, ", ".join(sorted(FAULT_SCENARIOS)))) from None
    return scenario(observatory=observatory, schedule_log=schedule_log,
                    plan=plan, checker=checker,
                    seed=scenario_seed("faults", name, seed))
