"""Canned fault scenarios for ``repro faults`` and the test suite.

Each scenario builds the standard one-client/one-server testbed, arms
a :class:`~repro.faults.injector.FaultInjector` with a scripted
:class:`~repro.faults.plan.FaultPlan`, runs a deterministic workload
through the faults, and returns the finished testbed (with the
injector attached as ``testbed.faults``).  All file contents carry
explicit tags so that two runs of the same scenario produce
byte-identical namespace digests — the determinism tests depend on it.
"""

from repro.bench.common import make_testbed, populate_volume, warm_cache
from repro.fs.content import SyntheticContent
from repro.net import MODEM
from repro.obs.scenarios import MOUNT, _probe_schedule, scenario_seed
from repro.obs.scenarios import fingerprint as obs_fingerprint
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ClientCrash,
    ClientRestart,
    FaultPlan,
    LinkOutage,
    LossBurst,
    ServerCrash,
    ServerRestart,
)
from repro.venus import VenusConfig


def _standard_volume(testbed):
    tree = {
        MOUNT + "/work": ("dir", 0),
        MOUNT + "/work/draft.tex": ("file", 15_000),
        MOUNT + "/work/figure.eps": ("file", 40_000),
        MOUNT + "/work/notes.txt": ("file", 4_000),
    }
    volume = populate_volume(testbed.server, MOUNT, tree)
    warm_cache(testbed.venus, testbed.server, volume)
    return volume


def namespace_digest(server):
    """Canonical, hashable digest of the server's whole namespace.

    Paths, object types, versions, content fingerprints, symlink
    targets, and directory listings — everything except mtimes, which
    legitimately differ between an interrupted and an uninterrupted
    run.  Two servers with equal digests hold the same files.
    """
    volumes = []
    for volume in sorted(server.registry.volumes(), key=lambda v: v.volid):
        prefix = "/" + "/".join(server.registry.mount_of(volume))
        rows = {}
        stack = [(volume.root, prefix)]
        while stack:
            vnode, path = stack.pop()
            rows[path] = (
                vnode.otype.value,
                vnode.version,
                vnode.content.fingerprint
                if vnode.content is not None else None,
                vnode.target,
                tuple(sorted(vnode.children)) if vnode.children else None,
            )
            if vnode.children:
                for name, child_fid in vnode.children.items():
                    child = volume.get(child_fid)
                    if child is not None:
                        stack.append((child, path + "/" + name))
        volumes.append((volume.volid, volume.stamp,
                        tuple(sorted(rows.items()))))
    return tuple(volumes)


def fault_fingerprint(testbed):
    """The obs fingerprint extended with fault/recovery final state."""
    digest = obs_fingerprint(testbed)
    server = testbed.server
    digest["server_namespace"] = namespace_digest(server)
    digest["server_crashes"] = server.crashes
    digest["reintegration_duplicates"] = \
        server.reintegrator.duplicates_skipped
    injector = getattr(testbed, "faults", None)
    if injector is not None:
        digest["fault_log"] = tuple(injector.log)
    return digest


def _faulted_testbed(config, plan, observatory, schedule_log, seed=0,
                     checker=None):
    testbed = make_testbed(MODEM, venus_config=config, seed=seed,
                           observatory=observatory)
    if schedule_log is not None:
        _probe_schedule(testbed.sim, schedule_log)
    if checker is not None:
        checker.attach(testbed)
    _standard_volume(testbed)
    testbed.faults = FaultInjector(testbed, plan)
    testbed.faults.start()
    return testbed


def smoke_scenario(observatory=None, schedule_log=None, plan=None,
                   checker=None, seed=0):
    """Everything once, briefly: outage, loss burst, client crash.

    A write-disconnected modem client logs updates through a link
    outage and a loss burst, crashes mid-trickle with records still in
    the CML, restarts from its RVM snapshot, reconnects, and drains.
    Fast enough for CI.
    """
    if plan is None:
        plan = FaultPlan([
            LinkOutage(at=90.0, duration=40.0),
            LossBurst(at=200.0, duration=40.0, loss_rate=0.25),
            ClientCrash(at=310.0),
            ClientRestart(at=340.0),
        ])
    # The short walk interval gives the client volume stamps (and the
    # snapshot taken at the crash keeps them), so the restart goes
    # through *rapid* validation, Figures 8-9.
    config = VenusConfig(aging_window=30.0, daemon_period=5.0,
                         probe_interval=30.0, hoard_walk_interval=120.0)
    testbed = _faulted_testbed(config, plan, observatory, schedule_log,
                               seed=seed, checker=checker)
    sim = testbed.sim

    def session():
        venus = testbed.venus
        yield from venus.connect()
        yield from venus.write_file(MOUNT + "/work/notes.txt",
                                    SyntheticContent(6_000,
                                                     tag=("smoke", 1)))
        yield sim.timeout(55.0)
        yield from venus.write_file(MOUNT + "/work/draft.tex",
                                    SyntheticContent(16_000,
                                                     tag=("smoke", 2)))
        yield sim.timeout(100.0)
        yield from venus.write_file(MOUNT + "/work/results.dat",
                                    SyntheticContent(40_000,
                                                     tag=("smoke", 3)))
        yield sim.timeout(130.0)
        # ~290 s: logged just before the scripted crash at 310 s; the
        # record must survive the crash inside the snapshot.
        yield from testbed.venus.write_file(
            MOUNT + "/work/report.txt",
            SyntheticContent(8_000, tag=("smoke", 4)))
        yield sim.timeout(400.0)
        # The restarted Venus (testbed.venus changed identity at the
        # client_restart action) has reconnected and drained by now.
        yield from testbed.venus.read_file(MOUNT + "/work/draft.tex")

    sim.run(sim.process(session()))
    return testbed


def client_crash_scenario(observatory=None, schedule_log=None, plan=None,
                          checker=None, seed=0):
    """A client dies mid-trickle and resumes from the barrier.

    A large store is being trickled when Venus crashes; the restart
    replays the persisted CML, revalidates rapidly (stamps survive),
    and finishes shipping without applying anything twice.
    """
    if plan is None:
        plan = FaultPlan([
            ClientCrash(at=130.0),
            ClientRestart(at=160.0),
        ])
    config = VenusConfig(aging_window=30.0, daemon_period=5.0,
                         probe_interval=30.0)
    testbed = _faulted_testbed(config, plan, observatory, schedule_log,
                               seed=seed, checker=checker)
    sim = testbed.sim

    def session():
        venus = testbed.venus
        yield from venus.connect()
        yield from venus.write_file(MOUNT + "/work/notes.txt",
                                    SyntheticContent(5_000,
                                                     tag=("ccrash", 1)))
        yield sim.timeout(80.0)
        # Aged at ~115 s, this 60 KB store is mid-flight (≈55 s on a
        # modem) when the crash lands at 130 s.
        yield from venus.write_file(MOUNT + "/work/results.dat",
                                    SyntheticContent(60_000,
                                                     tag=("ccrash", 2)))
        yield sim.timeout(520.0)
        yield from testbed.venus.read_file(MOUNT + "/work/results.dat")

    sim.run(sim.process(session()))
    return testbed


def server_crash_scenario(observatory=None, schedule_log=None, plan=None,
                          checker=None, seed=0):
    """A server dies mid-reintegration and comes back 30 s later.

    The store (namespace, volume stamps, applied-record marks)
    survives; callbacks and fragment state do not.  The client rides
    out the outage as a disconnection, revalidates rapidly against the
    surviving stamps on reconnection, and reintegration completes with
    every CML record applied exactly once.
    """
    if plan is None:
        plan = FaultPlan([
            ServerCrash(at=100.0),
            ServerRestart(at=130.0),
        ])
    config = VenusConfig(aging_window=20.0, daemon_period=5.0,
                         probe_interval=30.0)
    testbed = _faulted_testbed(config, plan, observatory, schedule_log,
                               seed=seed, checker=checker)
    sim = testbed.sim

    def session():
        venus = testbed.venus
        yield from venus.connect()
        yield from venus.write_file(MOUNT + "/work/draft.tex",
                                    SyntheticContent(16_000,
                                                     tag=("scrash", 1)))
        yield sim.timeout(65.0)
        # Aged at ~90 s; the ~27 s transfer straddles the crash at 100.
        yield from venus.write_file(MOUNT + "/work/results.dat",
                                    SyntheticContent(30_000,
                                                     tag=("scrash", 2)))
        yield sim.timeout(500.0)
        yield from testbed.venus.read_file(MOUNT + "/work/results.dat")

    sim.run(sim.process(session()))
    return testbed


FAULT_SCENARIOS = {
    "smoke": smoke_scenario,
    "client-crash": client_crash_scenario,
    "server-crash": server_crash_scenario,
}


def run_fault_scenario(name, observatory=None, schedule_log=None,
                       plan=None, checker=None, seed=None):
    """Run fault scenario ``name``; returns the finished testbed.

    ``checker`` optionally attaches an
    :class:`~repro.analysis.invariants.InvariantChecker` to the testbed
    before the workload runs (requires ``observatory``).  ``seed``
    selects an alternate stream universe via
    :func:`repro.obs.scenarios.scenario_seed` (kind ``"faults"``); the
    default None keeps the canonical (golden-pinned) streams.
    """
    try:
        scenario = FAULT_SCENARIOS[name]
    except KeyError:
        raise ValueError("unknown fault scenario %r (have %s)"
                         % (name, ", ".join(sorted(FAULT_SCENARIOS)))) from None
    return scenario(observatory=observatory, schedule_log=schedule_log,
                    plan=plan, checker=checker,
                    seed=scenario_seed("faults", name, seed))
