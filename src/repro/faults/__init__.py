"""repro.faults: deterministic fault injection and crash/recovery.

Declarative :class:`FaultPlan` timelines (link outages, degradations,
loss bursts, server and client crashes/restarts) executed by a
:class:`FaultInjector` against a testbed.  Client crashes snapshot the
RVM-persistent slice of Venus (:func:`snapshot_venus`) so a restart
replays the log and resumes trickle from the reintegration barrier;
server crashes lose volatile state (callbacks, fragments) while the
store and the idempotent-replay marks survive.  An empty plan injects
nothing and perturbs nothing.
"""

from repro.faults.injector import FaultInjector
from repro.faults.persistence import (
    VenusSnapshot,
    restore_venus,
    snapshot_venus,
)
from repro.faults.plan import (
    ACTION_TYPES,
    ClientCrash,
    ClientRestart,
    FaultPlan,
    LinkDegrade,
    LinkOutage,
    LossBurst,
    ServerCrash,
    ServerRestart,
)
from repro.faults.scenarios import (
    FAULT_SCENARIOS,
    fault_fingerprint,
    namespace_digest,
    run_fault_scenario,
)

__all__ = [
    "ACTION_TYPES",
    "ClientCrash",
    "ClientRestart",
    "FAULT_SCENARIOS",
    "FaultInjector",
    "FaultPlan",
    "LinkDegrade",
    "LinkOutage",
    "LossBurst",
    "ServerCrash",
    "ServerRestart",
    "VenusSnapshot",
    "fault_fingerprint",
    "namespace_digest",
    "restore_venus",
    "run_fault_scenario",
    "snapshot_venus",
]
