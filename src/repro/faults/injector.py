"""Deterministic execution of fault plans against a testbed.

The :class:`FaultInjector` expands a :class:`~repro.faults.plan.FaultPlan`
into a timeline of steps (windowed actions contribute an apply step
and a revert step) and walks it in a single simulation process.  All
randomness — currently only the optional schedule jitter — is drawn
up-front from the simulator's named ``faults.jitter`` stream, so the
same seed and plan always produce the same injected schedule, and a
different seed perturbs faults without touching workload randomness.

The zero-perturbation guarantee: an injector for an *empty* plan
spawns nothing and touches nothing, so a run with it is
schedule-identical to a run without it (the fault analogue of the
observability layer's null-observer guarantee).
"""

from repro.faults.persistence import restore_venus, snapshot_venus
from repro.faults.plan import (
    ClientCrash,
    ClientRestart,
    LinkDegrade,
    LinkOutage,
    LossBurst,
    ServerCrash,
    ServerRestart,
)


class FaultInjector:
    """Executes one fault plan against one testbed."""

    def __init__(self, testbed, plan, jitter=0.0):
        self.testbed = testbed
        self.sim = testbed.sim
        self.plan = plan
        self.jitter = float(jitter)
        #: [(time, description)] of every step actually executed.
        self.log = []
        #: The last pre-crash client snapshot (for restart).
        self.client_snapshot = None
        self._proc = None
        self._reverts = {}          # step seq -> saved state for revert

    # ------------------------------------------------------------------

    def start(self):
        """Spawn the timeline process.  No-op for an empty plan."""
        if self.plan.empty:
            return None
        steps = self._expand()
        self._proc = self.sim.process(self._run(steps),
                                      name="fault-injector")
        return self._proc

    def _expand(self):
        """Plan -> sorted [(time, seq, label, fn)] step list.

        Jitter shifts each *action* (its revert shifts with it, so
        windows keep their duration).  Draws happen here, before any
        step runs, in plan order — one draw per action regardless of
        what the steps later do.
        """
        rand = None
        if self.jitter > 0.0:
            if self.sim.rand is None:
                raise RuntimeError(
                    "jitter needs sim.rand (a RandomStreams); seed the "
                    "testbed through make_testbed")
            rand = self.sim.rand.stream("faults.jitter")
        steps = []
        for seq, action in enumerate(self.plan):
            shift = rand.uniform(0.0, self.jitter) if rand else 0.0
            when = action.at + shift
            apply_fn, revert_fn = self._steps_for(action, seq)
            steps.append((when, seq, "%s" % action.kind, apply_fn))
            if revert_fn is not None:
                steps.append((when + action.duration, seq,
                              "%s:revert" % action.kind, revert_fn))
        steps.sort(key=lambda s: (s[0], s[1]))
        return steps

    def _run(self, steps):
        for when, _seq, label, fn in steps:
            delay = when - self.sim.now
            if delay > 0:
                yield self.sim.sleep(delay)
            fn()
            self.log.append((self.sim.now, label))

    def _observe(self, action, **fields):
        obs = self.sim.obs
        if obs.enabled:
            obs.event("fault_injected", action=action, **fields)
            obs.metrics.counter("faults.injected", action=action).inc()

    def _steps_for(self, action, seq):
        """(apply, revert-or-None) closures for one action."""
        if isinstance(action, LinkOutage):
            return (lambda: self._apply_outage(action),
                    lambda: self._revert_outage(action))
        if isinstance(action, LinkDegrade):
            return (lambda: self._apply_degrade(action, seq),
                    lambda: self._revert_degrade(action, seq))
        if isinstance(action, LossBurst):
            return (lambda: self._apply_loss(action, seq),
                    lambda: self._revert_loss(action, seq))
        if isinstance(action, ServerCrash):
            return (lambda: self._server_crash(action), None)
        if isinstance(action, ServerRestart):
            return (lambda: self._server_restart(action), None)
        if isinstance(action, ClientCrash):
            return (lambda: self._client_crash(action), None)
        if isinstance(action, ClientRestart):
            return (lambda: self._client_restart(action), None)
        raise TypeError("unhandled fault action %r" % (action,))

    # -- link faults -----------------------------------------------------

    def _apply_outage(self, action):
        self.testbed.link.set_up(False)
        self._observe(action.kind, duration=action.duration)

    def _revert_outage(self, action):
        self.testbed.link.set_up(True)

    def _apply_degrade(self, action, seq):
        link = self.testbed.link
        self._reverts[seq] = (link.forward.bandwidth_bps,
                              link.backward.bandwidth_bps,
                              link.forward.loss_rate)
        if action.bandwidth_bps is not None:
            link.set_bandwidth(action.bandwidth_bps)
        if action.loss_rate is not None:
            link.set_loss_rate(action.loss_rate)
        self._observe(action.kind, duration=action.duration,
                      bandwidth_bps=action.bandwidth_bps,
                      loss_rate=action.loss_rate)

    def _revert_degrade(self, action, seq):
        link = self.testbed.link
        up_bps, down_bps, loss = self._reverts.pop(seq)
        link.set_bandwidth(down_bps, bandwidth_up_bps=up_bps)
        link.set_loss_rate(loss)

    def _apply_loss(self, action, seq):
        link = self.testbed.link
        self._reverts[seq] = link.forward.loss_rate
        link.set_loss_rate(action.loss_rate)
        self._observe(action.kind, duration=action.duration,
                      loss_rate=action.loss_rate)

    def _revert_loss(self, action, seq):
        self.testbed.link.set_loss_rate(self._reverts.pop(seq))

    # -- server faults ---------------------------------------------------

    def _server_crash(self, action):
        server = self.testbed.server
        killed = server.crash()
        self._observe(action.kind)
        obs = self.sim.obs
        if obs.enabled:
            obs.event("node_crash", node=server.node, role="server",
                      processes_killed=killed)

    def _server_restart(self, action):
        server = self.testbed.server
        server.restart()
        self._observe(action.kind)
        obs = self.sim.obs
        if obs.enabled:
            obs.event("node_restart", node=server.node, role="server")

    # -- client faults ---------------------------------------------------

    def _client_crash(self, action):
        venus = self.testbed.venus
        self.client_snapshot = snapshot_venus(venus)
        killed = venus.crash()
        self._observe(action.kind)
        obs = self.sim.obs
        if obs.enabled:
            obs.event("node_crash", node=venus.node, role="client",
                      processes_killed=killed,
                      cml_records=self.client_snapshot.cml_len)

    def _client_restart(self, action):
        if self.client_snapshot is None:
            raise RuntimeError("client restart with no snapshot "
                               "(no preceding crash)")
        snapshot = self.client_snapshot
        host = self.testbed.venus.endpoint.host
        venus = restore_venus(snapshot, self.sim, self.testbed.net, host)
        self.testbed.venus = venus
        self._observe(action.kind)
        obs = self.sim.obs
        if obs.enabled:
            obs.event("node_restart", node=venus.node, role="client",
                      cml_records=len(venus.cml))
