"""Declarative fault plans: a typed timeline of scripted failures.

A :class:`FaultPlan` is a list of actions, each pinned to a simulation
time, describing what goes wrong during a run — link outages and
degradations, loss bursts, server and client crashes and restarts.
Plans are pure data: nothing happens until a
:class:`~repro.faults.injector.FaultInjector` executes one against a
testbed.  Keeping the vocabulary closed and declarative is what makes
fault runs reproducible — the same plan against the same seed yields
the same event schedule, and plans can be built from plain dicts
(e.g. parsed from a config file) via :meth:`FaultPlan.from_dicts`.
"""

from dataclasses import dataclass, fields
from typing import Optional


@dataclass(frozen=True)
class LinkOutage:
    """Both directions of the link go down, then come back."""

    kind = "link_outage"
    at: float
    duration: float


@dataclass(frozen=True)
class LinkDegrade:
    """Temporarily change the link's bandwidth and/or loss rate.

    Models roaming onto a worse network for a while — the paper's
    "masking" scenario where bandwidth drops an order of magnitude.
    Fields left None keep their current value.
    """

    kind = "link_degrade"
    at: float
    duration: float
    bandwidth_bps: Optional[float] = None
    loss_rate: Optional[float] = None


@dataclass(frozen=True)
class LossBurst:
    """A window of elevated random packet loss (e.g. radio fading)."""

    kind = "loss_burst"
    at: float
    duration: float
    loss_rate: float = 0.2


@dataclass(frozen=True)
class ServerCrash:
    """The server dies: volatile state lost, the store survives."""

    kind = "server_crash"
    at: float


@dataclass(frozen=True)
class ServerRestart:
    """A crashed server comes back up with empty volatile state."""

    kind = "server_restart"
    at: float


@dataclass(frozen=True)
class ClientCrash:
    """Venus dies; RVM-persistent state is snapshotted at this instant."""

    kind = "client_crash"
    at: float


@dataclass(frozen=True)
class ClientRestart:
    """A crashed Venus restarts from its persisted snapshot."""

    kind = "client_restart"
    at: float


#: kind-string -> action class, the closed vocabulary.
ACTION_TYPES = {
    cls.kind: cls
    for cls in (LinkOutage, LinkDegrade, LossBurst, ServerCrash,
                ServerRestart, ClientCrash, ClientRestart)
}

#: Actions that open a window and implicitly revert at ``at + duration``.
WINDOWED = (LinkOutage, LinkDegrade, LossBurst)


class FaultPlan:
    """An immutable, time-sorted sequence of fault actions."""

    def __init__(self, actions=()):
        actions = list(actions)
        for action in actions:
            self._check(action)
        self._check_pairing(actions)
        # Stable sort: simultaneous actions keep their authored order.
        self.actions = tuple(sorted(actions, key=lambda a: a.at))

    @staticmethod
    def _check(action):
        if type(action) not in ACTION_TYPES.values():
            raise TypeError("not a fault action: %r" % (action,))
        if action.at < 0:
            raise ValueError("%s scheduled before t=0" % action.kind)
        if isinstance(action, WINDOWED) and action.duration <= 0:
            raise ValueError("%s needs a positive duration" % action.kind)

    @staticmethod
    def _check_pairing(actions):
        """Restarts must follow a matching crash, and crashes must not
        stack: the injector has exactly one snapshot slot per node."""
        for crash_cls, restart_cls, who in (
                (ServerCrash, ServerRestart, "server"),
                (ClientCrash, ClientRestart, "client")):
            down = False
            for action in sorted(actions, key=lambda a: a.at):
                if isinstance(action, crash_cls):
                    if down:
                        raise ValueError(
                            "%s crashed twice without a restart" % who)
                    down = True
                elif isinstance(action, restart_cls):
                    if not down:
                        raise ValueError(
                            "%s restart without a preceding crash" % who)
                    down = False

    @property
    def empty(self):
        return not self.actions

    def __len__(self):
        return len(self.actions)

    def __iter__(self):
        return iter(self.actions)

    def __repr__(self):
        return "FaultPlan(%s)" % ", ".join(
            "%s@%g" % (a.kind, a.at) for a in self.actions)

    @classmethod
    def from_dicts(cls, rows):
        """Build a plan from ``[{"kind": ..., "at": ..., ...}, ...]``."""
        actions = []
        for row in rows:
            row = dict(row)
            kind = row.pop("kind", None)
            action_cls = ACTION_TYPES.get(kind)
            if action_cls is None:
                raise ValueError(
                    "unknown fault kind %r (have %s)"
                    % (kind, ", ".join(sorted(ACTION_TYPES))))
            known = {f.name for f in fields(action_cls)}
            unknown = set(row) - known
            if unknown:
                raise ValueError("%s does not take %s"
                                 % (kind, ", ".join(sorted(unknown))))
            actions.append(action_cls(**row))
        return cls(actions)

    def to_dicts(self):
        """The inverse of :meth:`from_dicts` (for export/logging)."""
        rows = []
        for action in self.actions:
            row = {"kind": action.kind}
            for f in fields(action):
                row[f.name] = getattr(action, f.name)
            rows.append(row)
        return rows
