"""What survives a Venus crash: the RVM persistence model.

Real Venus keeps its metadata — the CML, cache entry status, volume
version stamps, the hoard database, and the counters that make
identifiers unique across reboots — in recoverable virtual memory
(RVM), so a crash loses at most the data of files being written at
that instant.  This module is the simulation analogue:
:func:`snapshot_venus` captures exactly the RVM-resident state, and
:func:`restore_venus` builds a fresh Venus from it.

Deliberately volatile (NOT captured):

* callback promises — object and volume flags are cleared, which is
  what forces the restarted client through (rapid) validation;
* fragment-shipping progress and any in-flight RPC or SFTP state;
* the reintegration barrier — frozen records thaw back into the log,
  exactly as an aborted chunk would;
* pending-miss and conflict queues (advice state is session-local).

Counters (CML seqno, fid allocator, RPC connection id) resume past
their snapshot values so the restarted incarnation never reuses an
identifier the server may have already seen.
"""

import copy
from dataclasses import dataclass, field, replace
from itertools import count

from repro.venus.cache import CacheEntry

#: Version stamp written into every snapshot.  Bump when the captured
#: field set (or the meaning of a field) changes; :func:`restore_venus`
#: refuses snapshots stamped with any other version, so a checkpoint
#: written by one schema can never be silently misread by another
#: (the repro.ckpt manifests embed this next to their own version).
SNAPSHOT_SCHEMA_VERSION = 1


@dataclass
class VenusSnapshot:
    """One client's RVM image, taken at ``time``."""

    node: str
    time: float
    config: object
    user: object
    server_nodes: list
    cml_records: list
    cml_stats: object
    next_seqno: int
    next_fid: int
    next_conn_id: int
    mounts: dict
    entries: list = field(default_factory=list)
    volume_stamps: dict = field(default_factory=dict)
    hoard_entries: list = field(default_factory=list)
    schema_version: int = SNAPSHOT_SCHEMA_VERSION

    @property
    def cml_len(self):
        return len(self.cml_records)


def _copy_record(record):
    """A CML record copy safe to mutate independently of the original.

    Content payloads are immutable in this simulation and are shared;
    the setattr dict is the only mutable payload field.
    """
    clone = replace(record)
    if clone.attrs is not None:
        clone.attrs = dict(clone.attrs)
    return clone


def _copy_entry(entry):
    """A cache entry as RVM would recover it: status yes, callback no."""
    clone = CacheEntry(entry.fid, entry.otype, path=entry.path)
    clone.version = entry.version
    clone.length = entry.length
    clone.mtime = entry.mtime
    clone.content = entry.content
    clone.children = dict(entry.children) \
        if entry.children is not None else None
    clone.target = entry.target
    clone.callback = False            # promises die with the process
    clone.hoard_priority = entry.hoard_priority
    clone.last_ref = entry.last_ref
    clone.local = entry.local
    # dirty is recomputed from the restored CML; pins drop to zero
    # (open sessions do not survive a crash).
    return clone


def snapshot_venus(venus):
    """Capture the RVM-persistent slice of a live Venus.

    Called by the fault injector immediately before a scripted crash;
    in RVM terms this is the state of the last committed transaction.
    Consuming one value from each allocator is how we learn its next
    value; the doomed incarnation never allocates again, and the
    restored one starts exactly where the counter stood.
    """
    return VenusSnapshot(
        node=venus.node,
        time=venus.sim.now,
        config=venus.config,
        user=venus.user,
        server_nodes=list(venus._server_nodes),
        cml_records=[_copy_record(r) for r in venus.cml],
        cml_stats=venus.cml.stats.snapshot(),
        next_seqno=next(venus.cml._seq),
        next_fid=next(venus._fid_counter),
        next_conn_id=venus.endpoint._next_conn_id,
        mounts=dict(venus._mounts),
        entries=[_copy_entry(e) for e in venus.cache.entries()],
        volume_stamps={volid: info.stamp
                       for volid, info in venus.cache.volume_infos().items()
                       if info.stamp is not None},
        hoard_entries=[copy.copy(e) for e in venus.hdb],
    )


def restore_venus(snapshot, sim, network, host):
    """Build a recovered Venus from ``snapshot``.

    The new instance starts EMULATING with no callbacks and no volume
    callbacks (stamps themselves survive — presenting them is what
    makes post-restart revalidation *rapid*, Figures 8-9).  Its probe
    daemon reconnects on its own schedule; reconnection revalidates
    and trickle reintegration resumes from the persisted log.
    """
    from repro.venus.venus import Venus

    version = getattr(snapshot, "schema_version", None)
    if version != SNAPSHOT_SCHEMA_VERSION:
        raise ValueError(
            "snapshot of %r has schema version %r; this build restores "
            "only version %d" % (snapshot.node, version,
                                 SNAPSHOT_SCHEMA_VERSION))
    server = snapshot.server_nodes if len(snapshot.server_nodes) > 1 \
        else snapshot.server_nodes[0]
    venus = Venus(sim, network, snapshot.node, server, host,
                  config=snapshot.config, user=snapshot.user,
                  first_conn_id=snapshot.next_conn_id)
    # Mount table and volume knowledge.
    venus._mounts = dict(snapshot.mounts)
    for volid, stamp in snapshot.volume_stamps.items():
        info = venus.cache.volume_info(volid)
        info.stamp = stamp
        info.callback = False
    for prefix, (volid, _root) in snapshot.mounts.items():
        venus.cache.volume_info(volid)
    # Cache contents (no eviction: the snapshot fit the same capacity).
    for entry in snapshot.entries:
        venus.cache.adopt(_copy_entry(entry))
    # The client modify log, with the barrier gone and the sequence
    # numbering resuming where it stopped.
    venus.cml._records = [_copy_record(r) for r in snapshot.cml_records]
    venus.cml._seq = count(snapshot.next_seqno)
    venus.cml.stats = snapshot.cml_stats.snapshot()
    venus.cml._notify()
    venus._fid_counter = count(snapshot.next_fid)
    # Hoard database.
    for hoard_entry in snapshot.hoard_entries:
        venus.hdb.add(hoard_entry.path, hoard_entry.priority,
                      children=hoard_entry.children)
    venus._refresh_dirty()
    return venus
