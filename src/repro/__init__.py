"""Reproduction of "Exploiting Weak Connectivity for Mobile File Access".

Mummert, Ebling & Satyanarayanan, SOSP 1995: the Coda File System's
adaptive mechanisms for intermittent, low-bandwidth networks — rapid
cache validation with volume callbacks, trickle reintegration with log
optimizations and adaptive chunking, and patience-gated cache miss
handling — rebuilt in Python on a deterministic discrete-event
substrate, together with the servers, transport protocols, traces, and
benchmarks needed to regenerate every table and figure in the paper's
evaluation.

Start with :mod:`repro.venus` (the client), :mod:`repro.server` (the
file server), and :mod:`repro.bench` (the experiments); or run
``python -m repro --help``.
"""

__version__ = "1.0.0"
__paper__ = ("Exploiting Weak Connectivity for Mobile File Access, "
             "SOSP 1995")
