"""User advice interfaces (Figures 5 and 6), as programmatic models.

The paper's Venus shows two screens: one listing recent cache misses
so the user can add objects to the hoard database, and one letting the
user approve or suppress fetches during a weakly-connected hoard walk.
Here the "user" is a :class:`UserModel` object; the default
:class:`TimeoutUser` reproduces the paper's unattended behaviour ("if
no input is provided within a certain time, the screen disappears and
all the listed objects are fetched").
"""

from dataclasses import dataclass


@dataclass
class FetchCandidate:
    """One row of the Figure 6 screen."""

    path: str
    priority: int
    size_bytes: int
    cost_seconds: float
    preapproved: bool


class UserModel:
    """Base class: what Venus asks its user.

    ``delay_seconds`` models the time the user (or the screen timeout)
    takes to respond; Venus waits that long in simulated time before
    using the answers.
    """

    delay_seconds = 0.0

    def approve_fetches(self, candidates):
        """Decide the non-preapproved rows of the Figure 6 screen.

        Returns ``(approved_paths, suppressed_paths)``; suppressed
        paths are not asked about again until strong connectivity
        ("Stop Asking").
        """
        raise NotImplementedError

    def review_misses(self, misses):
        """React to the Figure 5 screen: a list of MissRecords.

        Returns a list of ``(path, priority, children)`` hoard
        additions.
        """
        return []


class TimeoutUser(UserModel):
    """An unattended client: the screen times out, everything fetches."""

    def __init__(self, delay_seconds=60.0):
        self.delay_seconds = delay_seconds

    def approve_fetches(self, candidates):
        return [c.path for c in candidates if not c.preapproved], []


class AlwaysApprove(UserModel):
    """Immediately approves every fetch (a very patient user)."""

    def approve_fetches(self, candidates):
        return [c.path for c in candidates if not c.preapproved], []


class NeverApprove(UserModel):
    """Declines every fetch that is not preapproved (a frugal user)."""

    def approve_fetches(self, candidates):
        return [], []


class ScriptedUser(UserModel):
    """Deterministic decisions for tests and experiments.

    ``approvals`` maps path -> True (fetch) / False (skip) / "stop"
    (suppress until strongly connected).  ``hoard_additions`` is
    returned once from :meth:`review_misses`.
    """

    def __init__(self, approvals=None, hoard_additions=None,
                 delay_seconds=5.0):
        self.approvals = dict(approvals or {})
        self.hoard_additions = list(hoard_additions or [])
        self.delay_seconds = delay_seconds
        self.asked = []

    def approve_fetches(self, candidates):
        approved = []
        suppressed = []
        for candidate in candidates:
            if candidate.preapproved:
                continue
            self.asked.append(candidate.path)
            decision = self.approvals.get(candidate.path, False)
            if decision == "stop":
                suppressed.append(candidate.path)
            elif decision:
                approved.append(candidate.path)
        return approved, suppressed

    def review_misses(self, misses):
        additions, self.hoard_additions = self.hoard_additions, []
        return additions
