"""Errors surfaced to applications through the Venus file API."""


class CacheMissError(Exception):
    """The object is not cached and fetching it was not acceptable.

    Raised while disconnected (no network) or while weakly connected
    when the estimated service time exceeds the user's patience
    threshold (section 4.4.1).  The miss is recorded so the user can
    later review it and augment the hoard database (Figure 5).
    """

    def __init__(self, path, estimated_seconds=None):
        self.path = path
        self.estimated_seconds = estimated_seconds
        detail = ""
        if estimated_seconds is not None:
            detail = " (estimated fetch %.0fs)" % estimated_seconds
        super().__init__("cache miss on %s%s" % (path, detail))


class OfflineError(Exception):
    """The operation fundamentally requires a connection and there is none."""


class NoSpaceError(Exception):
    """The cache cannot hold the object even after eviction."""


class ConflictError(Exception):
    """An update could not be reintegrated; user resolution is needed."""
