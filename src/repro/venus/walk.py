"""Hoard walks (sections 2.2 and 4.4.3).

A walk runs in two phases.  The *status walk* validates cached state
and determines which objects should be fetched; thanks to volume
callbacks it usually involves little traffic.  The *data walk* fetches
the chosen contents.  When weakly connected, an interactive phase
between the two lets the user limit the data walk (Figure 6): objects
whose estimated service time is within the patience threshold are
pre-approved; the rest need explicit approval, or time out to "fetch
everything" on an unattended client.

At the end of a walk every cached object is known valid, so Venus
caches fresh volume version stamps — the moment of mutual consistency
that makes rapid validation after a disconnection possible.
"""

from dataclasses import dataclass

from repro.fs.objects import ObjectType
from repro.rpc2.errors import ConnectionDead
from repro.venus.advice import FetchCandidate
from repro.venus.errors import CacheMissError, NoSpaceError
from repro.venus.states import VenusState


@dataclass
class WalkReport:
    """What one hoard walk did."""

    started: float = 0.0
    finished: float = 0.0
    candidates: int = 0
    preapproved: int = 0
    user_approved: int = 0
    suppressed: int = 0
    skipped: int = 0
    fetched: int = 0
    fetched_bytes: int = 0
    validated_objects: int = 0
    stamps_acquired: int = 0

    @property
    def elapsed(self):
        return self.finished - self.started


class HoardWalker:
    """Executes hoard walks for one Venus instance."""

    def __init__(self, venus):
        self.venus = venus
        self.sim = venus.sim

    def walk(self):
        """Generator: run one complete hoard walk."""
        venus = self.venus
        report = WalkReport(started=self.sim.now)
        if venus.state.state is VenusState.EMULATING:
            report.finished = self.sim.now
            return report

        # ---- Phase 1: status walk --------------------------------------
        stale = venus.cache.invalid_entries()
        if stale:
            report.validated_objects = yield from \
                venus.validator.validate_objects(stale)
        candidates = yield from self._status_walk()
        report.candidates = len(candidates)

        # ---- Interactive phase (weakly connected only) ------------------
        approved = [c for c in candidates if c.preapproved]
        report.preapproved = len(approved)
        pending = [c for c in candidates if not c.preapproved]
        if pending and venus.state.state is VenusState.WRITE_DISCONNECTED:
            if venus.user.delay_seconds:
                yield self.sim.sleep(venus.user.delay_seconds)
            ok_paths, stop_paths = venus.user.approve_fetches(candidates)
            venus.suppressed_fetches.update(stop_paths)
            report.suppressed += len(stop_paths)
            by_path = {c.path: c for c in pending}
            for path in ok_paths:
                candidate = by_path.pop(path, None)
                if candidate is not None:
                    approved.append(candidate)
                    report.user_approved += 1
            report.skipped += len(by_path)
        elif pending:
            # Strongly connected: everything fetches, no questions.
            approved.extend(pending)

        # ---- Phase 2: data walk -----------------------------------------
        approved.sort(key=lambda c: -c.priority)
        for candidate in approved:
            try:
                entry = yield from venus._fetch_by_path(candidate.path)
            except (CacheMissError, FileNotFoundError, NoSpaceError):
                report.skipped += 1
                continue
            if entry is None:
                report.skipped += 1
                continue
            report.fetched += 1
            report.fetched_bytes += candidate.size_bytes
        # ---- Acquire volume stamps (section 4.2.1) ----------------------
        report.stamps_acquired = yield from self._acquire_stamps()
        report.finished = self.sim.now
        return report

    # ------------------------------------------------------------------

    def _status_walk(self):
        """Generator: expand the HDB into fetch candidates."""
        venus = self.venus
        candidates = []
        seen = set()
        for hoard_entry in venus.hdb.entries():
            yield from self._consider(hoard_entry.path, hoard_entry.priority,
                                      hoard_entry.children, candidates, seen,
                                      depth=0)
        return candidates

    def _consider(self, path, priority, recurse, candidates, seen, depth):
        """Generator: evaluate one path (and children if requested)."""
        venus = self.venus
        if path in seen or depth > 16:
            return
        seen.add(path)
        if path in venus.suppressed_fetches:
            return
        try:
            entry = yield from venus._lookup(path, want_data=False)
        except (FileNotFoundError, NotADirectoryError, CacheMissError):
            return
        except ConnectionDead:
            venus.handle_disconnection()
            return
        entry.hoard_priority = max(entry.hoard_priority, priority)
        if entry.otype is ObjectType.DIRECTORY:
            # Directories fetch in the status walk (they are small and
            # needed to expand children).
            if not entry.has_data or not venus.cache.is_valid(entry):
                try:
                    yield from venus._fetch_object(entry.fid, path)
                except (FileNotFoundError, CacheMissError):
                    return
            if recurse and entry.children:
                for name in sorted(entry.children):
                    yield from self._consider(path + "/" + name, priority,
                                              recurse, candidates, seen,
                                              depth + 1)
            return
        if entry.otype is ObjectType.SYMLINK:
            return
        needs_data = (entry.content is None
                      or not venus.cache.is_valid(entry))
        if not needs_data:
            return
        size = entry.length
        cost = venus.estimator.expected_transfer_time(
            size, default_bps=venus.config.initial_bps)
        preapproved = (venus.state.state is not
                       VenusState.WRITE_DISCONNECTED
                       or venus.patience.approves(priority, cost))
        candidates.append(FetchCandidate(
            path=path, priority=priority, size_bytes=size,
            cost_seconds=cost, preapproved=preapproved))

    def _acquire_stamps(self):
        """Generator: cache volume stamps for all cached volumes."""
        venus = self.venus
        volids = venus.cache.nonlocal_volumes()
        if not volids or not venus.config.use_volume_callbacks:
            return 0
        result = yield from venus._call_or_disconnect(
            "GetVolumeStamps", {"volumes": volids},
            args_size=8 + 8 * len(volids))
        if result is None:
            return 0
        stamps = result.result["stamps"]
        for volid, stamp in stamps.items():
            info = venus.cache.volume_info(volid)
            info.stamp = stamp
            info.callback = True
        return len(stamps)
