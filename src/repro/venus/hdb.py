"""The hoard database (HDB).

"In anticipation of disconnection, users may hoard data in the cache
by providing a prioritized list of files in a per-client hoard
database."  An entry names a path, a priority, and optionally covers
the directory's descendants (meta-expansion, the ``d+`` of real hoard
profiles).  The HDB is consulted by hoard walks (what to fetch) and by
the miss handler (how patient the user is about an object).
"""

from dataclasses import dataclass

from repro.fs.namespace import split_path


@dataclass
class HoardEntry:
    path: str
    priority: int
    children: bool = False    # also cover descendants

    def covers(self, path):
        """True if this entry applies to ``path``."""
        if path == self.path:
            return True
        if not self.children:
            return False
        prefix = split_path(self.path)
        parts = split_path(path)
        return parts[:len(prefix)] == prefix


class HoardDatabase:
    """The per-client prioritized hoard list."""

    def __init__(self):
        self._entries = {}

    def __len__(self):
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries.values())

    def add(self, path, priority, children=False):
        """Add or replace the hoard entry for ``path``."""
        if priority < 0:
            raise ValueError("negative hoard priority")
        entry = HoardEntry(path=path, priority=priority, children=children)
        self._entries[path] = entry
        return entry

    def remove(self, path):
        return self._entries.pop(path, None) is not None

    def entry_for(self, path):
        return self._entries.get(path)

    def priority_for(self, path):
        """Highest priority of any entry covering ``path`` (0 if none)."""
        best = 0
        for entry in self._entries.values():
            if entry.covers(path):
                best = max(best, entry.priority)
        return best

    def entries(self):
        """Entries sorted by descending priority (walk order)."""
        return sorted(self._entries.values(),
                      key=lambda e: (-e.priority, e.path))
