"""Venus: the client cache manager facade.

All application file access goes through this class.  Operations are
generators: call them with ``yield from`` inside a simulation process
(or use :meth:`Venus.run` to execute one as a process).

State-dependent behaviour (Figure 2):

* HOARDING (strong connectivity): reads fetch on miss; updates write
  through to the server synchronously.
* WRITE_DISCONNECTED (weak connectivity): reads are gated by the user
  patience model; updates are logged in the CML and trickle-
  reintegrated in the background.
* EMULATING (disconnected): reads are served from cache or miss;
  updates are logged.

Open-close session semantics (AFS/Coda): whole files are read and
written; individual read/write calls never touch the network.
"""

import zlib
from dataclasses import dataclass
from itertools import count

from repro.core.adaptation import ConnectionStrength, ConnectivityMonitor
from repro.core.cost import FREE, CostAwarePolicy, CostLedger
from repro.core.patience import PatienceModel
from repro.core.trickle import TrickleReintegrator
from repro.core.validation import RapidValidator
from repro.fs.content import Content
from repro.fs.fid import Fid
from repro.fs.namespace import split_path
from repro.fs.objects import ObjectType
from repro.rpc2.endpoint import Rpc2Endpoint
from repro.rpc2.errors import ConnectionDead
from repro.rpc2.packets import CODA_PORT, STATUS_BLOCK
from repro.venus.advice import TimeoutUser
from repro.venus.cache import CacheEntry, CacheManager
from repro.venus.cml import ClientModifyLog, CmlOp, CmlRecord
from repro.venus.errors import CacheMissError, OfflineError
from repro.venus.hdb import HoardDatabase
from repro.venus.misshandler import MissLog, MissRecord
from repro.venus.repair import ConflictStore, Repairer
from repro.venus.states import VenusState, VenusStateMachine


@dataclass
class VenusConfig:
    """Tunables, defaulting to the paper's published values."""

    cache_capacity: int = 50_000 * 1024    # Figure 6's cache size
    aging_window: float = 600.0            # A, section 4.3.4
    chunk_seconds: float = 30.0            # C's time budget, section 4.3.5
    daemon_period: float = 10.0            # trickle daemon poll
    hoard_walk_interval: float = 600.0     # "once every 10 minutes"
    strong_threshold_bps: float = 500_000.0
    initial_bps: float = 9600.0            # assumed before any estimate
    probe_interval: float = 60.0           # reconnection probing
    keepalive_interval: float = 60.0       # idle keepalive while connected
    bandwidth_probe_interval: float = 300.0  # re-estimate when traffic-idle
    bandwidth_probe_pad: int = 2048        # probe payload bytes
    local_op_cost: float = 0.0005          # client CPU per file operation
    patience_alpha: float = 2.0            # section 4.4.4
    patience_beta: float = 1.0
    patience_gamma: float = 0.01
    advice_timeout: float = 60.0           # Figure 6 screen timeout
    tariff: object = None                  # NetworkTariff; None = free
    # Ablation switches ------------------------------------------------
    log_optimizations: bool = True
    use_volume_callbacks: bool = True
    whole_chunk_mode: bool = False         # ship all eligible at once
    force_write_disconnected: bool = False  # Figure 12 methodology
    start_daemons: bool = True


@dataclass
class VenusStats:
    """Operation counters (beyond CML/trickle/validation stats)."""

    operations: int = 0
    fetches: int = 0
    fetch_bytes: int = 0
    stores_through: int = 0
    misses_transparent: int = 0
    misses_denied: int = 0
    misses_disconnected: int = 0
    hoard_walks: int = 0


class Handle:
    """An open file session."""

    def __init__(self, venus, path, entry, mode, program=None):
        self.venus = venus
        self.path = path
        self.entry = entry
        self.mode = mode
        self.program = program
        self.buffer = None
        self.closed = False

    def write(self, data):
        if "w" not in self.mode:
            raise PermissionError("file not open for writing")
        self.buffer = Content.of(data)

    def read(self):
        if self.buffer is not None:
            return self.buffer
        return self.entry.content


class Venus:
    """The per-client cache manager."""

    def __init__(self, sim, network, node, server, host,
                 config=None, user=None, first_conn_id=1):
        self.sim = sim
        self.node = node
        self.crashed = False
        # ``server`` may be one node name, or a list naming a volume
        # storage group (server replication, section 2.2); list items
        # may be CodaServer objects, which enables replica resolution.
        server_objects = None
        if isinstance(server, (list, tuple)):
            items = list(server)
            if items and hasattr(items[0], "node"):
                server_objects = items
                server_nodes = [s.node for s in items]
            else:
                server_nodes = items
        else:
            server_nodes = [server]
        self.server_node = server_nodes[0]
        self._server_nodes = server_nodes
        self.config = config or VenusConfig()
        self.user = user or TimeoutUser(self.config.advice_timeout)
        self.endpoint = Rpc2Endpoint(sim, network, node, CODA_PORT, host,
                                     default_bps=self.config.initial_bps,
                                     first_conn_id=first_conn_id)
        self.endpoint.register("BreakCallback", self._h_break_callback)
        if len(server_nodes) > 1:
            from repro.server.replication import ReplicaSet
            self.conn = ReplicaSet(self.endpoint, server_nodes,
                                   servers=server_objects)
        else:
            self.conn = self.endpoint.connect(self.server_node)
        self.cache = CacheManager(self.config.cache_capacity)
        self.cml = ClientModifyLog()
        self.hdb = HoardDatabase()
        self.misses = MissLog()
        self.conflicts = ConflictStore()
        self.repairer = Repairer(self)
        self.state = VenusStateMachine(initial=VenusState.EMULATING)
        self.monitor = ConnectivityMonitor(self.config.strong_threshold_bps)
        self.patience = PatienceModel(self.config.patience_alpha,
                                      self.config.patience_beta,
                                      self.config.patience_gamma)
        self.cost_policy = CostAwarePolicy(self.config.tariff or FREE)
        self.ledger = CostLedger(self.config.tariff or FREE)
        self._connected_since = None
        self.state.on_transition(self._account_connection_time)
        self.state.on_transition(self._observe_transition)
        self.cml.on_change = self._observe_cml
        self.trickle = TrickleReintegrator(self)
        self.validator = RapidValidator(
            sim, self.cache, self.conn,
            use_volume_callbacks=self.config.use_volume_callbacks,
            cpu=self.endpoint.cpu)
        self.stats = VenusStats()
        self.foreground_ops = 0
        self.suppressed_fetches = set()
        self._mounts = {}            # tuple(prefix) -> (volid, root_fid)
        self._fid_counter = count(1)
        self._client_tag = zlib.crc32(node.encode("utf-8")) % 4096
        self._walker = None          # set lazily (import cycle)
        if self.config.start_daemons:
            self.trickle.start()
            sim.process(self._probe_daemon(), name="%s-probe" % node,
                        owner=node)
            sim.process(self._walk_daemon(), name="%s-walk" % node,
                        owner=node)

    # ------------------------------------------------------------------
    # Utilities

    def run(self, generator):
        """Run a Venus operation generator as a simulation process."""
        return self.sim.process(generator)

    @property
    def estimator(self):
        return self.endpoint.estimator(self.server_node)

    def current_bandwidth_bps(self):
        """Best current estimate of usable bandwidth."""
        bps = self.estimator.bandwidth.bits_per_sec
        return bps if bps is not None else self.config.initial_bps

    def effective_aging_window(self):
        """The aging window after cost adaptation (section 8).

        Expensive per-byte networks stretch A so optimizations cancel
        more records before they are paid for; per-minute tariffs
        prefer draining promptly so the call can end.
        """
        if self.cost_policy.prefers_fast_drain:
            return 0.0
        return self.cost_policy.effective_aging_window(
            self.config.aging_window)

    def _account_connection_time(self, old, new):
        now = self.sim.now
        if new is VenusState.EMULATING:
            if self._connected_since is not None:
                self.ledger.add_connected_time(now - self._connected_since)
                self._connected_since = None
        elif self._connected_since is None:
            self._connected_since = now

    def _observe_transition(self, old, new):
        obs = self.sim.obs
        if obs.enabled:
            obs.event("state_transition", node=self.node,
                      frm=old.value, to=new.value)
            obs.metrics.counter("venus.transitions", node=self.node,
                                to=new.value).inc()

    def _observe_cml(self, log):
        obs = self.sim.obs
        if obs.enabled:
            obs.metrics.gauge("cml.length", node=self.node).set(len(log))
            obs.metrics.gauge("cml.bytes",
                              node=self.node).set(log.size_bytes)

    def network_cost(self):
        """Money spent so far on this tariff (bytes + connect time)."""
        connected = 0.0
        if self._connected_since is not None:
            connected = self.sim.now - self._connected_since
        self.ledger.bytes_transferred = self.endpoint.bytes_out
        return self.ledger.tariff.cost_of(
            self.ledger.bytes_transferred,
            self.ledger.connected_seconds + connected)

    def _new_fid(self, volid):
        """Allocate a client-local fid (stands in for ViceAllocFid)."""
        n = next(self._fid_counter)
        base = 10_000_000 + self._client_tag * 1_000
        return Fid(volid, base + n, base + n)

    def _local_work(self):
        """Generator: charge one operation's CPU on the shared host CPU.

        Foreground work and packet processing contend here, which is
        why heavy trickle traffic slows replay by a few percent.
        """
        yield from self.endpoint.cpu.use(self.config.local_op_cost)

    class _Foreground:
        """Counts in-flight foreground activity for trickle deferral."""

        def __init__(self, venus):
            self.venus = venus

        def __enter__(self):
            self.venus.foreground_ops += 1

        def __exit__(self, *exc):
            self.venus.foreground_ops -= 1

    def _foreground(self):
        return Venus._Foreground(self)

    # ------------------------------------------------------------------
    # Mount table

    def learn_mounts(self, registry):
        """Learn volume mount points from a server's registry.

        Stands in for Coda's mount-point traversal: real Venus
        discovers volumes by resolving mount-point objects; here we
        copy the (prefix -> volume root) map directly when the client
        is first configured.
        """
        for volume in registry.volumes():
            prefix = registry.mount_of(volume)
            self._mounts[prefix] = (volume.volid, volume.root_fid)
            self.cache.volume_info(volume.volid)

    def _mount_for(self, path):
        parts = tuple(split_path(path))
        for cut in range(len(parts), -1, -1):
            hit = self._mounts.get(parts[:cut])
            if hit is not None:
                return hit, list(parts[cut:]), "/" + "/".join(parts[:cut])
        raise FileNotFoundError("no volume mounted for %r" % (path,))

    # ------------------------------------------------------------------
    # Resolution and fetching

    def _lookup(self, path, program=None, want_data=True, fetch=True):
        """Generator: resolve ``path`` to its cache entry."""
        parent, name, entry = yield from self._resolve(
            path, program=program, fetch=fetch)
        if entry is None:
            raise FileNotFoundError(path)
        stale = (fetch and self.state.connected
                 and not self.cache.is_valid(entry))
        if (want_data and not entry.has_data) or stale:
            entry = yield from self._demand_object(
                entry.fid, path, program=program, entry=entry,
                want_data=want_data)
        return entry

    def _resolve(self, path, program=None, fetch=True):
        """Generator: walk ``path``; returns (parent_entry, name, entry).

        The final component may be absent (entry None).  Raises
        FileNotFoundError if an intermediate directory is missing.
        """
        (volid, root_fid), parts, prefix = self._mount_for(path)
        yield from self._local_work()
        here = yield from self._demand_object(root_fid, prefix,
                                              program=program, fetch=fetch)
        if not parts:
            return None, "", here
        walked = prefix
        for name in parts[:-1]:
            if here.children is None:
                raise NotADirectoryError(walked)
            child_fid = here.children.get(name)
            walked = walked + "/" + name
            if child_fid is None:
                raise FileNotFoundError(walked)
            here = yield from self._demand_object(child_fid, walked,
                                                  program=program,
                                                  fetch=fetch)
        name = parts[-1]
        if here.children is None:
            raise NotADirectoryError(walked)
        child_fid = here.children.get(name)
        entry = self.cache.get(child_fid) if child_fid is not None else None
        if child_fid is not None and entry is None and fetch:
            entry = yield from self._demand_object(
                child_fid, path, program=program, want_data=False)
        return here, name, entry

    def _demand_object(self, fid, path, program=None, entry=None,
                       fetch=True, want_data=True):
        """Generator: return a usable cache entry for ``fid``.

        This is the miss-handling heart (section 4.4.1): a miss while
        hoarding fetches transparently; while emulating it fails;
        while write disconnected the estimated service time is
        compared with the patience threshold.
        """
        self.stats.operations += 1
        if entry is None:
            entry = self.cache.get(fid)
        usable = (entry is not None
                  and (entry.has_data or not want_data)
                  and (not self.state.connected
                       or self.cache.is_valid(entry)))
        if usable:
            self.cache.touch(entry, self.sim.now)
            self._observe_reference(hit=True, path=path)
            return entry
        if not fetch:
            if entry is not None:
                return entry
            raise CacheMissError(path)
        if self.state.state is VenusState.EMULATING:
            if entry is not None:
                # Stale flags are unknowable offline; trust the cache.
                self.cache.touch(entry, self.sim.now)
                self._observe_reference(hit=True, path=path)
                return entry
            self.stats.misses_disconnected += 1
            miss = MissRecord(path=path, time=self.sim.now, program=program,
                              reason="disconnected")
            self.misses.record(miss)
            self._observe_reference(hit=False, path=path,
                                    reason="disconnected")
            raise CacheMissError(path)

        if not want_data:
            # Status-only demand: attributes are ~100 bytes, cheap at
            # any bandwidth (section 4.4.1) — no patience gate.
            self._observe_reference(hit=False, path=path, reason="status")
            entry = yield from self._fetch_status(fid, path)
            return entry
        if self.state.state is VenusState.WRITE_DISCONNECTED:
            yield from self._patience_gate(fid, path, program, entry)
        self._observe_reference(hit=False, path=path, reason="fetch")
        with self._foreground():
            entry = yield from self._fetch_object(fid, path)
        return entry

    def _observe_reference(self, hit, path, reason=None):
        """Count one cache reference in the observability layer."""
        obs = self.sim.obs
        if not obs.enabled:
            return
        if hit:
            obs.metrics.counter("cache.hits", node=self.node).inc()
            obs.event("cache_hit", node=self.node, path=path)
        else:
            obs.metrics.counter("cache.misses", node=self.node,
                                reason=reason).inc()
            obs.event("cache_miss", node=self.node, path=path,
                      reason=reason)

    def _fetch_status(self, fid, path):
        """Generator: refresh an object's status block from the server."""
        with self._foreground():
            result = yield from self._call_or_disconnect(
                "GetAttr", {"fid": fid}, args_size=32)
        if result is None:
            raise CacheMissError(path)
        if "error" in result.result:
            entry = self.cache.get(fid)
            if entry is not None and not entry.dirty:
                self.cache.remove(fid)
            raise FileNotFoundError(path)
        status = result.result["status"]
        entry = self.cache.get(fid)
        if entry is None:
            entry = CacheEntry(fid, status.otype, path=path)
            self.cache.add(entry, self.sim.now)
        if entry.version != status.version:
            # Stale data, fresh status: drop the payload.
            entry.content = None
            entry.children = None
            entry.target = None
        entry.apply_status(status)
        entry.callback = True
        self.cache.touch(entry, self.sim.now)
        return entry

    def _patience_gate(self, fid, path, program, entry):
        """Generator: raise CacheMissError unless the fetch is tolerable."""
        size = None
        if entry is not None and entry.version is not None:
            size = entry.length
        else:
            # Status is cheap ("only about 100 bytes long"), fetch it.
            with self._foreground():
                result = yield from self._call_or_disconnect(
                    "GetAttr", {"fid": fid}, args_size=STATUS_BLOCK)
            if result is None:
                raise CacheMissError(path)
            if "error" in result.result:
                raise FileNotFoundError(path)
            size = result.result["status"].length
        priority = self.hdb.priority_for(path)
        if entry is not None:
            priority = max(priority, entry.hoard_priority)
        estimate = self.estimator.expected_transfer_time(
            size, default_bps=self.config.initial_bps)
        reason = None
        if not self.patience.approves(priority, estimate):
            reason = "patience"
        elif not self.cost_policy.approves_fetch(priority, size):
            # Affordable in time but not in money (section 8).
            reason = "cost"
        if reason is None:
            self.stats.misses_transparent += 1
            return
        self.stats.misses_denied += 1
        miss = MissRecord(path=path, time=self.sim.now, program=program,
                          size_bytes=size, estimated_seconds=estimate,
                          priority=priority, reason=reason)
        self.misses.record(miss)
        self._observe_reference(hit=False, path=path, reason=reason)
        raise CacheMissError(path, estimated_seconds=estimate)

    def _fetch_object(self, fid, path):
        """Generator: fetch status+data for ``fid`` into the cache."""
        result = yield from self._call_or_disconnect(
            "Fetch", {"fid": fid}, args_size=32)
        if result is None:
            raise CacheMissError(path)
        if "error" in result.result:
            stale = self.cache.remove(fid)
            if stale is not None and stale.dirty:
                self.cache.add(stale, self.sim.now)  # keep dirty state
            raise FileNotFoundError(path)
        payload = result.result
        status = payload["status"]
        entry = self.cache.get(fid)
        if entry is None:
            entry = CacheEntry(fid, status.otype, path=path)
            self.cache.ensure_space(ENTRY_SPACE_GUESS + status.length)
            self.cache.add(entry, self.sim.now)
        entry.path = entry.path or path
        entry.apply_status(status)
        entry.callback = True
        if status.otype is ObjectType.DIRECTORY:
            entry.children = dict(payload["children"])
        elif status.otype is ObjectType.SYMLINK:
            entry.target = payload["target"]
        else:
            entry.content = payload["content"]
        entry.local = False
        self.cache.touch(entry, self.sim.now)
        self.stats.fetches += 1
        self.stats.fetch_bytes += status.length
        return entry

    def _fetch_by_path(self, path):
        """Generator: ensure ``path``'s data is cached (data-walk fetch).

        Unlike the demand path this bypasses the patience gate — the
        fetch was already approved (or pre-approved) during the walk's
        interactive phase.
        """
        _parent, _name, entry = yield from self._resolve(path)
        if entry is None:
            raise FileNotFoundError(path)
        if entry.has_data and self.cache.is_valid(entry):
            return entry
        entry = yield from self._fetch_object(entry.fid, path)
        return entry

    def _call_or_disconnect(self, proc, args, args_size=64, send_size=0):
        """Generator: RPC that converts death into a state transition."""
        try:
            result = yield self.conn.call(proc, args, args_size=args_size,
                                          send_size=send_size)
            return result
        except ConnectionDead:
            self.handle_disconnection()
            return None

    # ------------------------------------------------------------------
    # Public read API

    def open(self, path, mode="r", program=None):
        """Generator: open a file session (whole-file semantics)."""
        yield from self._local_work()
        if "w" in mode:
            entry = yield from self._prepare_write_target(path, program)
        else:
            entry = yield from self._lookup(path, program=program)
        entry.pins += 1
        return Handle(self, path, entry, mode, program)

    def close(self, handle):
        """Generator: close a session; a written session stores the file."""
        if handle.closed:
            return
        handle.closed = True
        handle.entry.pins -= 1
        if handle.buffer is not None:
            yield from self._store(handle.path, handle.entry, handle.buffer)
        else:
            yield from self._local_work()

    def read_file(self, path, program=None):
        """Generator: whole-file read; returns the Content."""
        with self._foreground():
            entry = yield from self._lookup(path, program=program)
        if entry.otype is not ObjectType.FILE:
            raise IsADirectoryError(path)
        return entry.content

    def stat(self, path, program=None):
        """Generator: status of ``path`` from cache (fetching if needed)."""
        entry = yield from self._lookup(path, program=program,
                                        want_data=False)
        return entry

    def readdir(self, path, program=None):
        """Generator: sorted names in a directory."""
        entry = yield from self._lookup(path, program=program)
        if entry.children is None:
            raise NotADirectoryError(path)
        return sorted(entry.children)

    def readlink(self, path, program=None):
        entry = yield from self._lookup(path, program=program)
        if entry.otype is not ObjectType.SYMLINK:
            raise OSError("not a symlink: %s" % path)
        return entry.target

    # ------------------------------------------------------------------
    # Public update API

    def write_file(self, path, data, program=None):
        """Generator: whole-file write (create or overwrite)."""
        yield from self._local_work()
        entry = yield from self._prepare_write_target(path, program)
        yield from self._store(path, entry, Content.of(data))
        return entry

    def _prepare_write_target(self, path, program):
        parent, name, entry = yield from self._resolve(path, program=program)
        if entry is not None:
            if entry.otype is not ObjectType.FILE:
                raise IsADirectoryError(path)
            return entry
        if parent is None:
            raise FileNotFoundError(path)
        entry = yield from self._create_object(
            parent, name, path, ObjectType.FILE)
        return entry

    def _create_object(self, parent, name, path, otype, target=None):
        """Generator: create a file/dir/symlink under ``parent``."""
        fid = self._new_fid(parent.fid.volume)
        if self.state.state is VenusState.HOARDING:
            result = yield from self._call_or_disconnect(
                "MakeObject", {"parent": parent.fid, "name": name,
                               "fid": fid, "otype": otype.value,
                               "content": Content.empty()
                               if otype is ObjectType.FILE else None,
                               "target": target})
            if result is not None:
                if "error" in result.result:
                    raise FileExistsError(path) \
                        if result.result["error"] == "exists" \
                        else FileNotFoundError(path)
                entry = self._install_new(fid, otype, path, target,
                                          local=False)
                entry.apply_status(result.result["status"])
                entry.callback = True
                parent.version = result.result["parent_version"]
                self._note_volume_stamp(fid.volume,
                                        result.result["volume_stamp"])
                parent.children[name] = fid
                return entry
            # fell through: we just disconnected — log it instead
        entry = self._install_new(fid, otype, path, target, local=True)
        parent.children[name] = fid
        op = {ObjectType.FILE: CmlOp.CREATE,
              ObjectType.DIRECTORY: CmlOp.MKDIR,
              ObjectType.SYMLINK: CmlOp.SYMLINK}[otype]
        self._log(CmlRecord(op=op, fid=fid, parent=parent.fid, name=name,
                            target=target,
                            content=Content.empty()
                            if otype is ObjectType.FILE else None))
        return entry

    def _install_new(self, fid, otype, path, target, local):
        entry = CacheEntry(fid, otype, path=path)
        entry.local = local
        entry.version = None if local else entry.version
        entry.mtime = self.sim.now
        if otype is ObjectType.FILE:
            entry.content = Content.empty()
        elif otype is ObjectType.DIRECTORY:
            entry.children = {}
        else:
            entry.target = target
        self.cache.add(entry, self.sim.now)
        return entry

    def _store(self, path, entry, content):
        """Generator: store new contents of ``entry``."""
        if self.state.state is VenusState.HOARDING:
            with self._foreground():
                result = yield from self._call_or_disconnect(
                    "Store", {"fid": entry.fid, "content": content,
                              "base_version": entry.version},
                    send_size=content.size)
            if result is not None:
                if "error" in result.result:
                    raise OSError("store failed: %s" % result.result["error"])
                self.cache.ensure_space(content.size)
                entry.content = content
                entry.length = content.size
                entry.version = result.result["version"]
                entry.mtime = self.sim.now
                self._note_volume_stamp(entry.fid.volume,
                                        result.result["volume_stamp"])
                self.stats.stores_through += 1
                return
            # disconnected mid-store: fall through to logging
        self.cache.ensure_space(content.size)
        entry.content = content
        entry.length = content.size
        entry.mtime = self.sim.now
        self._log(CmlRecord(op=CmlOp.STORE, fid=entry.fid, content=content,
                            base_version=None if entry.local
                            else entry.version))

    def mkdir(self, path, program=None):
        """Generator: create a directory."""
        yield from self._local_work()
        parent, name, entry = yield from self._resolve(path, program=program)
        if entry is not None:
            raise FileExistsError(path)
        if parent is None:
            raise FileNotFoundError(path)
        return (yield from self._create_object(
            parent, name, path, ObjectType.DIRECTORY))

    def symlink(self, target, path, program=None):
        """Generator: create a symbolic link at ``path``."""
        yield from self._local_work()
        parent, name, entry = yield from self._resolve(path, program=program)
        if entry is not None:
            raise FileExistsError(path)
        return (yield from self._create_object(
            parent, name, path, ObjectType.SYMLINK, target=target))

    def unlink(self, path, program=None):
        """Generator: remove a file or symlink."""
        yield from self._local_work()
        parent, name, entry = yield from self._resolve(path, program=program)
        if entry is None or parent is None:
            raise FileNotFoundError(path)
        if entry.otype is ObjectType.DIRECTORY:
            raise IsADirectoryError(path)
        yield from self._remove_common(parent, name, entry, CmlOp.UNLINK)

    def rmdir(self, path, program=None):
        """Generator: remove an empty directory."""
        yield from self._local_work()
        parent, name, entry = yield from self._resolve(path, program=program)
        if entry is None or parent is None:
            raise FileNotFoundError(path)
        if entry.otype is not ObjectType.DIRECTORY:
            raise NotADirectoryError(path)
        if entry.children:
            raise OSError("directory not empty: %s" % path)
        yield from self._remove_common(parent, name, entry, CmlOp.RMDIR)

    def _remove_common(self, parent, name, entry, op):
        if self.state.state is VenusState.HOARDING:
            result = yield from self._call_or_disconnect(
                "Remove", {"parent": parent.fid, "name": name})
            if result is not None:
                if "error" in result.result:
                    raise OSError("remove failed: %s"
                                  % result.result["error"])
                parent.version = result.result["parent_version"]
                self._note_volume_stamp(parent.fid.volume,
                                        result.result["volume_stamp"])
                del parent.children[name]
                self.cache.remove(entry.fid)
                return
        del parent.children[name]
        self._log(CmlRecord(op=op, fid=entry.fid, parent=parent.fid,
                            name=name,
                            base_version=None if entry.local
                            else entry.version))
        self.cache.remove(entry.fid)
        self._refresh_dirty()

    def rename(self, old_path, new_path, program=None):
        """Generator: rename/move an object."""
        yield from self._local_work()
        src_parent, src_name, entry = yield from self._resolve(
            old_path, program=program)
        if entry is None or src_parent is None:
            raise FileNotFoundError(old_path)
        dst_parent, dst_name, existing = yield from self._resolve(
            new_path, program=program)
        if dst_parent is None:
            raise FileNotFoundError(new_path)
        if existing is not None:
            raise FileExistsError(new_path)
        if dst_parent.fid.volume != src_parent.fid.volume:
            # Renames never cross volumes (EXDEV), as in real Coda.
            raise OSError("cross-volume rename: %s -> %s"
                          % (old_path, new_path))
        if self.state.state is VenusState.HOARDING:
            result = yield from self._call_or_disconnect(
                "Rename", {"parent": src_parent.fid, "name": src_name,
                           "to_parent": dst_parent.fid, "to_name": dst_name})
            if result is not None:
                if "error" in result.result:
                    raise OSError("rename failed: %s"
                                  % result.result["error"])
                del src_parent.children[src_name]
                dst_parent.children[dst_name] = entry.fid
                entry.path = new_path
                self._note_volume_stamp(entry.fid.volume,
                                        result.result["volume_stamp"])
                return
        del src_parent.children[src_name]
        dst_parent.children[dst_name] = entry.fid
        entry.path = new_path
        self._log(CmlRecord(op=CmlOp.RENAME, fid=entry.fid,
                            parent=src_parent.fid, name=src_name,
                            to_parent=dst_parent.fid, to_name=dst_name))

    def link(self, existing_path, new_path, program=None):
        """Generator: create a hard link to an existing file."""
        yield from self._local_work()
        entry = yield from self._lookup(existing_path, program=program,
                                        want_data=False)
        if entry.otype is not ObjectType.FILE:
            raise IsADirectoryError(existing_path)
        parent, name, target = yield from self._resolve(new_path,
                                                        program=program)
        if target is not None:
            raise FileExistsError(new_path)
        if parent is None:
            raise FileNotFoundError(new_path)
        if parent.fid.volume != entry.fid.volume:
            raise OSError("cross-volume link: %s -> %s"
                          % (new_path, existing_path))
        if self.state.state is VenusState.HOARDING:
            result = yield from self._call_or_disconnect(
                "Link", {"parent": parent.fid, "name": name,
                         "fid": entry.fid})
            if result is not None:
                if "error" in result.result:
                    raise OSError("link failed: %s"
                                  % result.result["error"])
                parent.children[name] = entry.fid
                self._note_volume_stamp(parent.fid.volume,
                                        result.result["volume_stamp"])
                return entry
        parent.children[name] = entry.fid
        self._log(CmlRecord(op=CmlOp.LINK, fid=entry.fid,
                            parent=parent.fid, name=name))
        return entry

    def setattr(self, path, attrs, program=None):
        """Generator: change attributes (chmod/chown/utimes analogue)."""
        yield from self._local_work()
        entry = yield from self._lookup(path, program=program,
                                        want_data=False)
        if self.state.state is VenusState.HOARDING:
            result = yield from self._call_or_disconnect(
                "SetAttr", {"fid": entry.fid, "attrs": attrs,
                            "base_version": entry.version})
            if result is not None:
                if "error" in result.result:
                    raise OSError("setattr failed: %s"
                                  % result.result["error"])
                entry.version = result.result["version"]
                self._note_volume_stamp(entry.fid.volume,
                                        result.result["volume_stamp"])
                return
        self._log(CmlRecord(op=CmlOp.SETATTR, fid=entry.fid, attrs=attrs,
                            base_version=None if entry.local
                            else entry.version))

    # ------------------------------------------------------------------
    # CML logging

    def _log(self, record):
        if not self.config.log_optimizations:
            # Ablation: append without any cancellation.
            record.time = self.sim.now
            record.seqno = next(self.cml._seq)
            self.cml.stats.appended_records += 1
            self.cml.stats.appended_bytes += record.size
            self.cml._records.append(record)
            self.cml._notify()
        else:
            self.cml.append(record, self.sim.now)
        obs = self.sim.obs
        if obs.enabled:
            obs.event("cml_append", node=self.node, op=record.op.value,
                      records=len(self.cml), bytes=self.cml.size_bytes)
        self._refresh_dirty()

    def _refresh_dirty(self):
        dirty_fids = set()
        for record in self.cml:
            dirty_fids.add(record.fid)
        for entry in self.cache.iter_entries():
            entry.dirty = entry.fid in dirty_fids

    # ------------------------------------------------------------------
    # Hoarding API

    def hoard(self, path, priority, children=False):
        """Add ``path`` to the hoard database (takes effect at next walk)."""
        self.hdb.add(path, priority, children=children)
        (volid, _root), _parts, _prefix = self._mount_for(path)
        for entry in self.cache.iter_entries():
            if entry.path and self.hdb.entry_for(path).covers(entry.path):
                entry.hoard_priority = max(entry.hoard_priority, priority)

    def unhoard(self, path):
        return self.hdb.remove(path)

    def hoard_walk(self):
        """Generator: run a full hoard walk now (also called periodically)."""
        from repro.venus.walk import HoardWalker
        if self._walker is None:
            self._walker = HoardWalker(self)
        self.stats.hoard_walks += 1
        report = yield from self._walker.walk()
        return report

    def review_misses(self):
        """Generator: the Figure 5 interaction via the user model."""
        misses = self.misses.drain()
        if not misses:
            return []
        if self.user.delay_seconds:
            yield self.sim.sleep(self.user.delay_seconds)
        additions = self.user.review_misses(misses)
        for path, priority, children in additions:
            self.hoard(path, priority, children=children)
        return additions

    # ------------------------------------------------------------------
    # Synchronization / state management

    def sync(self):
        """Generator: user-forced full reintegration (section 4.3.2)."""
        if self.state.state is VenusState.EMULATING:
            raise OfflineError("cannot sync while disconnected")
        drained = yield from self.trickle.drain()
        return drained

    def sync_subtree(self, path, program=None):
        """Generator: force reintegration of one subtree's updates.

        The section 4.3.5 refinement: ship everything logged for
        objects under ``path`` (plus precedence antecedents) now,
        without waiting for the rest of the CML to age.  Returns True
        once those records have left the log.
        """
        if self.state.state is VenusState.EMULATING:
            raise OfflineError("cannot sync while disconnected")
        entry = yield from self._lookup(path, program=program,
                                        want_data=False)
        subtree = self._subtree_fids(entry.fid)
        records = self._precedence_closure(subtree)
        ok = yield from self.trickle.reintegrate_records(records)
        return ok

    def _subtree_fids(self, root_fid):
        """All cached fids at or below ``root_fid``."""
        result = {root_fid}
        stack = [root_fid]
        while stack:
            entry = self.cache.get(stack.pop())
            if entry is None or not entry.children:
                continue
            for child_fid in entry.children.values():
                if child_fid not in result:
                    result.add(child_fid)
                    stack.append(child_fid)
        return result

    def _precedence_closure(self, fids):
        """CML records touching ``fids``, closed under antecedents.

        A record's antecedents are all earlier records that touch any
        of the same objects; including them guarantees the server sees
        a replayable, in-order chunk (section 4.3.5's "precedence
        relationships").
        """
        records = self.cml.records
        touched = set(fids)
        included = set()
        changed = True
        while changed:
            changed = False
            for record in reversed(records):
                if id(record) in included:
                    continue
                involved = {fid for fid
                            in (record.fid, record.parent,
                                record.to_parent)
                            if fid is not None}
                if involved & touched:
                    included.add(id(record))
                    if not involved <= touched:
                        touched |= involved
                    changed = True
        return [r for r in records if id(r) in included]

    def crash(self):
        """Simulate a Venus process (or machine) crash.

        Everything volatile dies at this instant: the endpoint's socket
        closes and every simulation process owned by this node — the
        trickle/probe/walk daemons, in-flight RPCs, SFTP transfers —
        is killed.  Persistent state (the CML, cache metadata, volume
        stamps: the RVM analogue) is whatever a prior
        :func:`repro.faults.persistence.snapshot_venus` captured; this
        object itself must not be used again.  Returns the kill count.
        """
        self.crashed = True
        return self.endpoint.shutdown()

    def handle_disconnection(self):
        """React to transport death: enter the emulating state."""
        if self.state.state is VenusState.EMULATING:
            return
        self.state.transition(VenusState.EMULATING, self.sim.now)
        self.cache.drop_all_callbacks()
        # The next connection may be a very different network.
        self.estimator.reset()

    def connect(self):
        """Generator: probe the server and come online if reachable.

        Runs validation, then enters write disconnected (Figure 2: the
        transition from emulating "occurs on any connection, regardless
        of strength"), then — if strongly connected — drains the CML
        and moves to hoarding.
        """
        reached = yield from self._ping_any(pad=4096)
        if reached is None:
            return False
        strength = self.monitor.classify(True, self.current_bandwidth_bps())
        if self.state.state is VenusState.EMULATING:
            self.state.transition(VenusState.WRITE_DISCONNECTED,
                                  self.sim.now)
            with self._foreground():
                yield from self._revalidate()
        yield from self._maybe_promote(strength)
        return True

    def _ping_any(self, pad=0):
        """Generator: ping servers until one answers; returns its name.

        With a single server this is a plain reachability probe; with a
        replica set, any live member keeps the client connected.
        """
        for node in self._server_nodes:
            try:
                yield self.endpoint.ping(node)
                if pad:
                    yield self.endpoint.ping(node, pad=pad)
                return node
            except ConnectionDead:
                continue
        return None

    def _revalidate(self):
        try:
            yield from self.validator.validate_all()
        except ConnectionDead:
            self.handle_disconnection()

    def _maybe_promote(self, strength):
        """Generator: move between WD and hoarding per strength."""
        if self.config.force_write_disconnected:
            return
        state = self.state.state
        if state is VenusState.WRITE_DISCONNECTED \
                and strength is ConnectionStrength.STRONG:
            drained = yield from self.trickle.drain()
            if drained and self.state.state \
                    is VenusState.WRITE_DISCONNECTED:
                self.state.transition(VenusState.HOARDING, self.sim.now)
                self.suppressed_fetches.clear()
        elif state is VenusState.HOARDING \
                and strength is ConnectionStrength.WEAK:
            self.state.transition(VenusState.WRITE_DISCONNECTED,
                                  self.sim.now)

    def _note_volume_stamp(self, volid, stamp):
        """Track a fresh stamp only when our volume callback held.

        Without a callback, another client may have updated the volume
        before this reply; trusting the stamp would wrongly validate
        the whole volume later.
        """
        info = self.cache.volume_info(volid)
        if info.callback:
            info.stamp = stamp

    # ------------------------------------------------------------------
    # Reintegration outcomes (called by the trickle engine)

    def on_reintegration_success(self, records, new_versions, stamps):
        for fid, version in new_versions.items():
            entry = self.cache.get(fid)
            if entry is not None:
                entry.version = version
                entry.local = False
        for record in self.cml:
            if record.base_version is not None \
                    and record.fid in new_versions:
                record.base_version = new_versions[record.fid]
            if record.fid in new_versions and record.base_version is None \
                    and record.op in (CmlOp.STORE, CmlOp.SETATTR,
                                      CmlOp.UNLINK):
                record.base_version = new_versions[record.fid]
        for volid, stamp in stamps.items():
            self._note_volume_stamp(volid, stamp)
        self._refresh_dirty()

    def on_reintegration_conflict(self, pairs):
        for record, reason in pairs:
            self.conflicts.add(record, reason,
                               self._best_path_for(record), self.sim.now)
            entry = self.cache.get(record.fid)
            if entry is not None:
                entry.callback = False
                if entry.local:
                    self.cache.remove(entry.fid)
        self._refresh_dirty()

    def _best_path_for(self, record):
        """Best-known path of a conflicted record's object."""
        entry = self.cache.get(record.fid)
        if entry is not None and entry.path:
            return entry.path
        if record.parent is not None and record.name:
            parent = self.cache.get(record.parent)
            if parent is not None and parent.path:
                return parent.path + "/" + record.name
        return None

    def list_conflicts(self):
        """Unresolved conflicts awaiting user repair (section 2.2)."""
        return self.conflicts.pending()

    def repair(self, conflict, keep):
        """Generator: resolve a conflict, keeping 'mine' or 'theirs'."""
        if isinstance(conflict, int):
            conflict = self.conflicts.get(conflict)
        resolved = yield from self.repairer.resolve(conflict, keep)
        return resolved

    # ------------------------------------------------------------------
    # Server-initiated callbacks

    def _h_break_callback(self, ctx, args):
        for fid in args.get("fids", ()):
            self.cache.break_object(fid)
        for volid in args.get("volumes", ()):
            self.cache.break_volume(volid)
        return {}

    # ------------------------------------------------------------------
    # Daemons

    def _probe_daemon(self):
        """Reconnection probing and connectivity reclassification."""
        config = self.config
        bw_probe_due = 0.0
        last_bw_samples = -1
        while True:
            yield self.sim.sleep(config.probe_interval)
            state = self.state.state
            if state is VenusState.EMULATING:
                yield from self.connect()
                continue
            # Connected: keep liveness fresh and the classification
            # current.  An active transfer already refreshes both.
            silent = min(self.endpoint.liveness.silent_for(node)
                         for node in self._server_nodes)
            if silent >= config.keepalive_interval:
                reached = yield from self._ping_any()
                if reached is None:
                    self.handle_disconnection()
                    continue
            # When no transfers have refreshed the bandwidth estimate
            # lately, probe: the network under the client may have
            # changed (modem at night, Ethernet in the morning).
            samples = self.estimator.bandwidth.samples
            if samples == last_bw_samples and self.sim.now >= bw_probe_due:
                reached = yield from self._ping_any(
                    pad=config.bandwidth_probe_pad)
                if reached is None:
                    self.handle_disconnection()
                    continue
                bw_probe_due = self.sim.now \
                    + config.bandwidth_probe_interval
            last_bw_samples = self.estimator.bandwidth.samples
            strength = self.monitor.classify(
                True, self.current_bandwidth_bps())
            yield from self._maybe_promote(strength)

    def _walk_daemon(self):
        """Hoard walks "once every 10 minutes"."""
        while True:
            yield self.sim.sleep(self.config.hoard_walk_interval)
            if self.state.state is VenusState.EMULATING:
                continue
            try:
                yield from self.hoard_walk()
            except ConnectionDead:
                self.handle_disconnection()


#: Guessed entry size used before a fetch returns real status.
ENTRY_SPACE_GUESS = 256
