"""The client modify log (CML) and its optimizations.

While emulating or write disconnected, Venus logs every mutating
operation here.  Before a record is appended, the optimizer checks
whether it cancels or overrides earlier records (section 4.3.3) — a
store overwrites a previous store of the same file; an unlink of a
file created within the log annihilates the create, its stores, and
itself.  Trace studies showed these optimizations are "the key to
reducing the volume of reintegration data."

During trickle reintegration a *reintegration barrier* freezes a head
prefix of the log (Figure 3): frozen records are being shipped and are
exempt from optimization; only records to the right of the barrier may
cancel each other.  If reintegration aborts, the barrier is removed
and the whole log becomes optimizable again.
"""

import enum
from dataclasses import dataclass
from itertools import count
from typing import Optional

from repro.fs.content import Content
from repro.fs.fid import Fid

#: Modelled wire/log overhead of one CML record, bytes.
RECORD_OVERHEAD = 100


class CmlOp(enum.Enum):
    STORE = "store"
    CREATE = "create"
    UNLINK = "unlink"
    MKDIR = "mkdir"
    RMDIR = "rmdir"
    RENAME = "rename"
    SYMLINK = "symlink"
    LINK = "link"
    SETATTR = "setattr"


@dataclass
class CmlRecord:
    """One logged update, carrying everything needed to replay it."""

    op: CmlOp
    fid: Fid                                 # the object acted upon
    time: float = 0.0                        # append time (for aging)
    seqno: int = 0
    parent: Optional[Fid] = None             # containing directory
    name: Optional[str] = None
    to_parent: Optional[Fid] = None          # rename destination dir
    to_name: Optional[str] = None
    content: Optional[Content] = None        # store payload
    target: Optional[str] = None             # symlink target
    base_version: Optional[int] = None       # version the client saw
    attrs: Optional[dict] = None             # setattr payload

    @property
    def size(self):
        """Bytes this record contributes to the CML (and the wire)."""
        data = self.content.size if self.content is not None else 0
        return RECORD_OVERHEAD + data

    def involves(self, fid):
        return fid in (self.fid, self.parent, self.to_parent)

    def __repr__(self):
        return "<CML #%d %s %s%s>" % (
            self.seqno, self.op.value, self.fid,
            " %r" % self.name if self.name else "")


@dataclass
class CmlStats:
    """Cumulative accounting used by the Figure 14 style tables."""

    appended_records: int = 0
    appended_bytes: int = 0
    optimized_records: int = 0
    optimized_bytes: int = 0
    reintegrated_records: int = 0
    reintegrated_bytes: int = 0

    def snapshot(self):
        return CmlStats(**self.__dict__)


class ClientModifyLog:
    """Temporal log of updates with optimization and a freeze barrier."""

    def __init__(self):
        self._records = []
        self._seq = count(1)
        self._frozen = set()       # id()s of records behind the barrier
        self.stats = CmlStats()
        # Observability hook: called with the log after any content
        # change (append, commit, abort, discard).  None by default —
        # Venus wires it to the metrics gauges when instrumented.
        self.on_change = None

    def _notify(self):
        if self.on_change is not None:
            self.on_change(self)

    # -- basic views ----------------------------------------------------

    def __len__(self):
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    @property
    def records(self):
        return list(self._records)

    @property
    def size_bytes(self):
        return sum(record.size for record in self._records)

    @property
    def frozen_count(self):
        return len(self._frozen)

    def frozen_records(self):
        return [r for r in self._records if id(r) in self._frozen]

    def unfrozen_records(self):
        return [r for r in self._records if id(r) not in self._frozen]

    def oldest_age(self, now):
        if not self._records:
            return None
        return now - self._records[0].time

    # -- appending with optimization -------------------------------------

    def append(self, record, now):
        """Log ``record``, applying cancellation optimizations.

        Returns True if the record was actually appended, False if it
        annihilated itself together with earlier records (e.g. the
        unlink of a file created within the log).
        """
        record.time = now
        record.seqno = next(self._seq)
        self.stats.appended_records += 1
        self.stats.appended_bytes += record.size
        appended = self._optimize_and_insert(record)
        self._notify()
        return appended

    def _optimize_and_insert(self, record):
        live = self._records
        op = record.op

        if op is CmlOp.STORE:
            self._cancel(lambda r: r.op is CmlOp.STORE and r.fid == record.fid)
        elif op is CmlOp.SETATTR:
            self._cancel(lambda r: r.op is CmlOp.SETATTR
                         and r.fid == record.fid)
        elif op is CmlOp.UNLINK:
            # Stores and setattrs of a doomed object are always dead.
            self._cancel(lambda r: r.op in (CmlOp.STORE, CmlOp.SETATTR)
                         and r.fid == record.fid)
            creator = self._find_unfrozen(
                lambda r: r.op in (CmlOp.CREATE, CmlOp.SYMLINK)
                and r.fid == record.fid)
            renamed = any(r.op is CmlOp.RENAME and r.fid == record.fid
                          for r in live)
            linked = any(r.op is CmlOp.LINK and r.fid == record.fid
                         for r in live)
            if creator is not None and not renamed and not linked:
                # Identity cancellation: create + updates + unlink vanish.
                self._remove(creator)
                self._account_self_cancel(record)
                return False
        elif op is CmlOp.RMDIR:
            maker = self._find_unfrozen(
                lambda r: r.op is CmlOp.MKDIR and r.fid == record.fid)
            if maker is not None:
                obstructed = any(
                    r is not maker and (r.parent == record.fid
                                        or r.to_parent == record.fid
                                        or r.fid == record.fid)
                    for r in live)
                if not obstructed:
                    self._remove(maker)
                    self._account_self_cancel(record)
                    return False
        self._records.append(record)
        return True

    def _find_unfrozen(self, predicate):
        for index in range(len(self._records) - 1, -1, -1):
            record = self._records[index]
            if id(record) not in self._frozen and predicate(record):
                return record
        return None

    def _cancel(self, predicate):
        doomed = [r for r in self._records
                  if id(r) not in self._frozen and predicate(r)]
        for record in doomed:
            self._remove(record)

    def _remove(self, record):
        self._records.remove(record)
        self.stats.optimized_records += 1
        self.stats.optimized_bytes += record.size

    def _account_self_cancel(self, record):
        self.stats.optimized_records += 1
        self.stats.optimized_bytes += record.size

    # -- aging and chunk selection (section 4.3.5) -----------------------

    def eligible_records(self, now, aging_window):
        """The head prefix old enough to reintegrate (temporal order)."""
        eligible = []
        for record in self._records:
            if now - record.time < aging_window:
                break
            eligible.append(record)
        return eligible

    def select_chunk(self, now, aging_window, chunk_bytes):
        """Maximal eligible prefix whose sizes sum to ``chunk_bytes``.

        At least one record is selected if any is eligible, even if its
        size alone exceeds the budget (it will be fragmented by the
        transport; section 4.3.5).  While a reintegration is in flight
        (records frozen), nothing is selected.
        """
        if self._frozen:
            return []
        chunk = []
        total = 0
        for record in self.eligible_records(now, aging_window):
            if chunk and total + record.size > chunk_bytes:
                break
            chunk.append(record)
            total += record.size
        return chunk

    # -- the reintegration barrier (Figure 3) ----------------------------

    def freeze(self, n_records):
        """Place the barrier after the first ``n_records`` records."""
        if n_records > len(self._records):
            raise ValueError("cannot freeze %d of %d records"
                             % (n_records, len(self._records)))
        self.freeze_records(self._records[:n_records])

    def freeze_records(self, records):
        """Freeze an explicit record set (subtree reintegration).

        The set must be *dependency closed*: for every frozen record,
        every earlier record touching any of the same objects is frozen
        too, so replay order at the server respects precedence.
        """
        if self._frozen:
            raise RuntimeError("a reintegration is already in progress")
        wanted = {id(r) for r in records}
        known = {id(r) for r in self._records}
        if not wanted <= known:
            raise ValueError("freezing records not in the log")
        frozen_fids = set()
        for record in records:
            for fid in (record.fid, record.parent, record.to_parent):
                if fid is not None:
                    frozen_fids.add(fid)
        for record in self._records:
            if id(record) in wanted:
                continue
            later_than_all = all(record.seqno > r.seqno for r in records)
            if later_than_all:
                continue
            if any(fid in frozen_fids for fid
                   in (record.fid, record.parent, record.to_parent)
                   if fid is not None):
                raise ValueError(
                    "frozen set not dependency closed (record %s)"
                    % record)
        self._frozen = wanted

    def commit_frozen(self):
        """Reintegration succeeded: drop the frozen records."""
        done = [r for r in self._records if id(r) in self._frozen]
        for record in done:
            self.stats.reintegrated_records += 1
            self.stats.reintegrated_bytes += record.size
        self._records = [r for r in self._records
                         if id(r) not in self._frozen]
        self._frozen = set()
        self._notify()
        return done

    def abort_frozen(self):
        """Reintegration failed: lift the barrier and re-optimize.

        Records that became superfluous while frozen (e.g. a store
        overwritten by a newer store appended during the attempt) are
        removed now, exactly as section 4.3.3 describes.
        """
        self._frozen = set()
        survivors = self._records
        self._records = []
        for record in survivors:
            self._optimize_and_insert(record)
        self._notify()

    def discard(self, records):
        """Drop specific records without reintegration accounting.

        Used when a record is found to be in conflict: it leaves the
        CML and becomes a user-visible conflict instead.
        """
        doomed = set(id(r) for r in records)
        kept = [r for r in self._records if id(r) not in doomed]
        removed = len(self._records) - len(kept)
        self._records = kept
        self._frozen = set()
        self._notify()
        return removed
