"""Venus: the client cache manager.

Venus mediates all file access on a client.  It runs in one of three
states (Figure 2): *hoarding* when strongly connected, *emulating* when
disconnected, and *write disconnected* when weakly connected.  This
package contains the cache, the hoard database, the client modify log
with its optimizations, hoard walking, cache-miss handling with the
user patience model, and the Venus facade that ties them together.
"""

from repro.venus.advice import (
    AlwaysApprove,
    NeverApprove,
    ScriptedUser,
    TimeoutUser,
    UserModel,
)
from repro.venus.cache import CacheEntry, CacheManager
from repro.venus.cml import ClientModifyLog, CmlOp, CmlRecord
from repro.venus.errors import CacheMissError, NoSpaceError, OfflineError
from repro.venus.hdb import HoardDatabase, HoardEntry
from repro.venus.misshandler import MissRecord
from repro.venus.repair import Conflict, ConflictStore, Repairer
from repro.venus.states import VenusState
from repro.venus.venus import Venus, VenusConfig

__all__ = [
    "AlwaysApprove",
    "CacheEntry",
    "CacheManager",
    "CacheMissError",
    "ClientModifyLog",
    "Conflict",
    "ConflictStore",
    "CmlOp",
    "CmlRecord",
    "HoardDatabase",
    "HoardEntry",
    "MissRecord",
    "NeverApprove",
    "NoSpaceError",
    "OfflineError",
    "Repairer",
    "ScriptedUser",
    "TimeoutUser",
    "UserModel",
    "Venus",
    "VenusConfig",
    "VenusState",
]
