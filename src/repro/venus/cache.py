"""The client file cache.

Entries hold object status, optionally contents, and the two validity
flags of the two-granularity coherence scheme: a per-object callback
and membership in a volume whose stamp is covered by a volume
callback.  Cache space is managed by a priority blend of hoard
priority and recency, as in Kistler's original design; dirty objects
(those referenced by CML records) and pinned objects (open sessions)
are never evicted.
"""

from dataclasses import dataclass

from repro.venus.errors import NoSpaceError

#: Modelled metadata overhead per cache entry, bytes.
ENTRY_OVERHEAD = 256


@dataclass
class VolumeInfo:
    """Client-side knowledge about one volume."""

    volid: int
    stamp: object = None        # last validated version stamp (None = none)
    callback: bool = False      # volume callback believed valid

    def drop(self):
        self.stamp = None
        self.callback = False


class CacheEntry:
    """One cached object.

    ``__slots__`` because fleet-scale runs hold tens of thousands of
    entries and touch them millions of times.  ``content`` is a
    managed attribute: contents are immutable and only ever *replaced*
    (never resized in place), so the setter is the single point where
    an entry's space can change, and it keeps the owning
    :class:`CacheManager`'s incremental byte accounting exact.
    """

    __slots__ = ("fid", "otype", "path", "version", "length", "mtime",
                 "_content", "children", "target", "callback",
                 "hoard_priority", "last_ref", "dirty", "pins", "_local",
                 "_cache")

    def __init__(self, fid, otype, path=None):
        self.fid = fid
        self.otype = otype
        self.path = path
        self.version = None        # server version last known
        self.length = 0
        self.mtime = 0.0
        self._content = None       # Content, or None for status-only
        self.children = None       # name -> fid, for directories
        self.target = None         # symlink target
        self.callback = False      # object callback believed valid
        self.hoard_priority = 0
        self.last_ref = 0.0
        self.dirty = False         # referenced by CML records
        self.pins = 0              # open sessions
        self._local = False        # created locally, unknown to server
        self._cache = None         # owning CacheManager, while resident

    @property
    def local(self):
        """Created locally, unknown to the server.

        Managed like ``content``: the setter keeps the owning cache's
        per-volume local-entry counts exact, so "which volumes hold a
        non-local entry" is answered without scanning the table.
        """
        return self._local

    @local.setter
    def local(self, value):
        value = bool(value)
        if value == self._local:
            return
        self._local = value
        cache = self._cache
        if cache is not None:
            refs = cache._local_refs
            vol = self.fid.volume
            if value:
                refs[vol] = refs.get(vol, 0) + 1
            else:
                left = refs[vol] - 1
                if left:
                    refs[vol] = left
                else:
                    del refs[vol]

    @property
    def content(self):
        return self._content

    @content.setter
    def content(self, content):
        old = self._content
        self._content = content
        cache = self._cache
        if cache is not None:
            cache._used_bytes += ((content.size if content is not None
                                   else 0)
                                  - (old.size if old is not None else 0))

    @property
    def has_data(self):
        return (self._content is not None or self.children is not None
                or self.target is not None)

    @property
    def space(self):
        data = self._content.size if self._content is not None else 0
        return ENTRY_OVERHEAD + data

    def apply_status(self, status):
        self.version = status.version
        self.length = status.length
        self.mtime = status.mtime

    def __repr__(self):
        return "<CacheEntry %s %s v%s%s%s>" % (
            self.fid, self.path, self.version,
            " data" if self.has_data else "",
            " dirty" if self.dirty else "")


class CacheManager:
    """Fid-indexed cache with priority eviction and space accounting."""

    def __init__(self, capacity_bytes=50_000 * 1024):
        self.capacity_bytes = capacity_bytes
        self._entries = {}
        self._volumes = {}
        self._ref_clock = 0
        self.evictions = 0
        # Incremental space accounting: maintained by insert/remove and
        # the CacheEntry.content setter, so used_bytes is O(1) instead
        # of a sum over every entry (the former #1 hot frame of the
        # fleet benchmarks).
        self._used_bytes = 0
        # Entry counts per referenced volume id (Fid.volume is frozen,
        # so a resident entry's volume never changes): all entries, and
        # the local-only subset.  Together they answer "nothing stale"
        # and "which volumes need stamps" in O(#volumes) instead of a
        # table scan per hoard walk.
        self._volume_refs = {}
        self._local_refs = {}

    # -- lookup ----------------------------------------------------------

    def __len__(self):
        return len(self._entries)

    def __contains__(self, fid):
        return fid in self._entries

    def get(self, fid):
        return self._entries.get(fid)

    def entries(self):
        return list(self._entries.values())

    def iter_entries(self):
        """Iterate resident entries without copying the table.

        For read-only scans (hoard walks, validity sweeps); callers
        that add or remove entries mid-scan must use :meth:`entries`.
        """
        return iter(self._entries.values())

    def entries_in_volume(self, volid):
        return [e for e in self._entries.values() if e.fid.volume == volid]

    def volume_info(self, volid):
        info = self._volumes.get(volid)
        if info is None:
            info = VolumeInfo(volid)
            self._volumes[volid] = info
        return info

    def volume_infos(self):
        return dict(self._volumes)

    @property
    def used_bytes(self):
        return self._used_bytes

    def recompute_used_bytes(self):
        """Full O(n) recount, for audits and tests of the fast path."""
        return sum(entry.space for entry in self._entries.values())

    def recompute_volume_refs(self):
        """Full O(n) recount of per-volume entry counts, for audits.

        Returns ``(all_refs, local_refs)`` matching the incrementally
        maintained ``_volume_refs`` / ``_local_refs`` tables.
        """
        refs = {}
        local_refs = {}
        for entry in self._entries.values():
            vol = entry.fid.volume
            refs[vol] = refs.get(vol, 0) + 1
            if entry._local:
                local_refs[vol] = local_refs.get(vol, 0) + 1
        return refs, local_refs

    def nonlocal_volumes(self):
        """Sorted ids of volumes holding at least one non-local entry."""
        local_refs = self._local_refs
        return sorted(vol for vol, count in self._volume_refs.items()
                      if count > local_refs.get(vol, 0))

    @property
    def available_bytes(self):
        return self.capacity_bytes - self.used_bytes

    # -- mutation ----------------------------------------------------------

    def touch(self, entry, now):
        self._ref_clock += 1
        entry.last_ref = now

    def add(self, entry, now):
        """Insert ``entry``, evicting lower-priority objects if needed."""
        self.ensure_space(entry.space)
        self._insert(entry)
        self.touch(entry, now)
        return entry

    def adopt(self, entry):
        """Insert ``entry`` without eviction or recency update.

        For state restoration (crash recovery replaying an RVM
        snapshot that fit the same capacity): the entry enters the
        table with its recorded recency, and accounting stays exact
        without re-running eviction decisions the doomed incarnation
        already made.
        """
        return self._insert(entry)

    def _insert(self, entry):
        old = self._entries.get(entry.fid)
        if old is not None:
            self._detach(old)
        self._entries[entry.fid] = entry
        entry._cache = self
        self._used_bytes += entry.space
        refs = self._volume_refs
        vol = entry.fid.volume
        refs[vol] = refs.get(vol, 0) + 1
        if entry._local:
            locals_ = self._local_refs
            locals_[vol] = locals_.get(vol, 0) + 1
        return entry

    def _detach(self, entry):
        entry._cache = None
        self._used_bytes -= entry.space
        vol = entry.fid.volume
        refs = self._volume_refs
        left = refs[vol] - 1
        if left:
            refs[vol] = left
        else:
            del refs[vol]
        if entry._local:
            locals_ = self._local_refs
            left = locals_[vol] - 1
            if left:
                locals_[vol] = left
            else:
                del locals_[vol]

    def remove(self, fid):
        entry = self._entries.pop(fid, None)
        if entry is not None:
            self._detach(entry)
        return entry

    def ensure_space(self, nbytes):
        """Evict until ``nbytes`` fit; raises NoSpaceError if impossible."""
        if nbytes > self.capacity_bytes:
            raise NoSpaceError("object of %d bytes exceeds cache capacity"
                               % nbytes)
        while self.capacity_bytes - self._used_bytes < nbytes:
            victim = self._pick_victim()
            if victim is None:
                raise NoSpaceError(
                    "cache full of unevictable objects (%d bytes needed)"
                    % nbytes)
            self.evictions += 1
            del self._entries[victim.fid]
            self._detach(victim)

    def _pick_victim(self):
        """Lowest (hoard priority, recency) unpinned clean entry."""
        candidates = [e for e in self._entries.values()
                      if not e.dirty and not e.pins and not e.local
                      and e.has_data]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda e: (e.hoard_priority, e.last_ref))

    # -- validity (two-granularity coherence) ------------------------------

    def invalid_entries(self):
        """Non-local entries not believed coherent, in table order.

        Equivalent to filtering :meth:`iter_entries` through
        :meth:`is_valid`, with the volume-table lookup hoisted out of
        a per-entry method call — this scan runs over the whole cache
        on every hoard walk's status phase.
        """
        # Volumes currently protected by a volume callback.  When they
        # cover every referenced volume, no entry can be stale —
        # regardless of per-entry flags — so the usual post-walk steady
        # state costs O(#volumes), not O(n).
        ok = {vid for vid, info in self._volumes.items()
              if info.callback}
        for vid in self._volume_refs:
            if vid not in ok:
                break
        else:
            return []
        return [e for e in self._entries.values()
                if not (e._local or e.callback)
                and e.fid.volume not in ok]

    def is_valid(self, entry):
        """Believed coherent: object callback or volume callback."""
        if entry.local:
            return True
        if entry.callback:
            return True
        info = self._volumes.get(entry.fid.volume)
        return bool(info and info.callback)

    def break_object(self, fid):
        entry = self._entries.get(fid)
        if entry is not None:
            entry.callback = False

    def break_volume(self, volid):
        """A volume callback break: the stamp is stale too (section 4.2.2).

        Objects fall back on their individual callbacks, if any.
        """
        info = self._volumes.get(volid)
        if info is not None:
            info.drop()

    def drop_all_callbacks(self):
        """On disconnection, nothing can be trusted until revalidation.

        Volume *stamps* survive — presenting them on reconnection is
        the whole point of rapid validation — but callback promises do
        not.
        """
        for entry in self._entries.values():
            entry.callback = False
        for info in self._volumes.values():
            info.callback = False
