"""The client file cache.

Entries hold object status, optionally contents, and the two validity
flags of the two-granularity coherence scheme: a per-object callback
and membership in a volume whose stamp is covered by a volume
callback.  Cache space is managed by a priority blend of hoard
priority and recency, as in Kistler's original design; dirty objects
(those referenced by CML records) and pinned objects (open sessions)
are never evicted.
"""

from dataclasses import dataclass

from repro.venus.errors import NoSpaceError

#: Modelled metadata overhead per cache entry, bytes.
ENTRY_OVERHEAD = 256


@dataclass
class VolumeInfo:
    """Client-side knowledge about one volume."""

    volid: int
    stamp: object = None        # last validated version stamp (None = none)
    callback: bool = False      # volume callback believed valid

    def drop(self):
        self.stamp = None
        self.callback = False


class CacheEntry:
    """One cached object."""

    def __init__(self, fid, otype, path=None):
        self.fid = fid
        self.otype = otype
        self.path = path
        self.version = None        # server version last known
        self.length = 0
        self.mtime = 0.0
        self.content = None        # Content, or None for status-only
        self.children = None       # name -> fid, for directories
        self.target = None         # symlink target
        self.callback = False      # object callback believed valid
        self.hoard_priority = 0
        self.last_ref = 0.0
        self.dirty = False         # referenced by CML records
        self.pins = 0              # open sessions
        self.local = False         # created locally, unknown to server

    @property
    def has_data(self):
        return (self.content is not None or self.children is not None
                or self.target is not None)

    @property
    def space(self):
        data = self.content.size if self.content is not None else 0
        return ENTRY_OVERHEAD + data

    def apply_status(self, status):
        self.version = status.version
        self.length = status.length
        self.mtime = status.mtime

    def __repr__(self):
        return "<CacheEntry %s %s v%s%s%s>" % (
            self.fid, self.path, self.version,
            " data" if self.has_data else "",
            " dirty" if self.dirty else "")


class CacheManager:
    """Fid-indexed cache with priority eviction and space accounting."""

    def __init__(self, capacity_bytes=50_000 * 1024):
        self.capacity_bytes = capacity_bytes
        self._entries = {}
        self._volumes = {}
        self._ref_clock = 0
        self.evictions = 0

    # -- lookup ----------------------------------------------------------

    def __len__(self):
        return len(self._entries)

    def __contains__(self, fid):
        return fid in self._entries

    def get(self, fid):
        return self._entries.get(fid)

    def entries(self):
        return list(self._entries.values())

    def entries_in_volume(self, volid):
        return [e for e in self._entries.values() if e.fid.volume == volid]

    def volume_info(self, volid):
        info = self._volumes.get(volid)
        if info is None:
            info = VolumeInfo(volid)
            self._volumes[volid] = info
        return info

    def volume_infos(self):
        return dict(self._volumes)

    @property
    def used_bytes(self):
        return sum(entry.space for entry in self._entries.values())

    @property
    def available_bytes(self):
        return self.capacity_bytes - self.used_bytes

    # -- mutation ----------------------------------------------------------

    def touch(self, entry, now):
        self._ref_clock += 1
        entry.last_ref = now

    def add(self, entry, now):
        """Insert ``entry``, evicting lower-priority objects if needed."""
        self.ensure_space(entry.space)
        self._entries[entry.fid] = entry
        self.touch(entry, now)
        return entry

    def remove(self, fid):
        return self._entries.pop(fid, None)

    def ensure_space(self, nbytes):
        """Evict until ``nbytes`` fit; raises NoSpaceError if impossible."""
        if nbytes > self.capacity_bytes:
            raise NoSpaceError("object of %d bytes exceeds cache capacity"
                               % nbytes)
        while self.capacity_bytes - self.used_bytes < nbytes:
            victim = self._pick_victim()
            if victim is None:
                raise NoSpaceError(
                    "cache full of unevictable objects (%d bytes needed)"
                    % nbytes)
            self.evictions += 1
            del self._entries[victim.fid]

    def _pick_victim(self):
        """Lowest (hoard priority, recency) unpinned clean entry."""
        candidates = [e for e in self._entries.values()
                      if not e.dirty and not e.pins and not e.local
                      and e.has_data]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda e: (e.hoard_priority, e.last_ref))

    # -- validity (two-granularity coherence) ------------------------------

    def is_valid(self, entry):
        """Believed coherent: object callback or volume callback."""
        if entry.local:
            return True
        if entry.callback:
            return True
        info = self._volumes.get(entry.fid.volume)
        return bool(info and info.callback)

    def break_object(self, fid):
        entry = self._entries.get(fid)
        if entry is not None:
            entry.callback = False

    def break_volume(self, volid):
        """A volume callback break: the stamp is stale too (section 4.2.2).

        Objects fall back on their individual callbacks, if any.
        """
        info = self._volumes.get(volid)
        if info is not None:
            info.drop()

    def drop_all_callbacks(self):
        """On disconnection, nothing can be trusted until revalidation.

        Volume *stamps* survive — presenting them on reconnection is
        the whole point of rapid validation — but callback promises do
        not.
        """
        for entry in self._entries.values():
            entry.callback = False
        for info in self._volumes.values():
            info.callback = False
