"""Cache miss records and the miss log (section 4.4.1, Figure 5).

When a weakly-connected miss would take longer than the user's
patience threshold, Venus "returns a cache miss error and records the
miss."  The miss log feeds the Figure 5 screen: each record names the
object, the referencing program, and the cost estimate that caused the
refusal.
"""

from dataclasses import dataclass
from typing import Optional


@dataclass
class MissRecord:
    """One refused (or failed) cache miss."""

    path: str
    time: float
    program: Optional[str] = None
    size_bytes: Optional[int] = None
    estimated_seconds: Optional[float] = None
    priority: int = 0
    reason: str = "patience"      # "patience" or "disconnected"


class MissLog:
    """Misses since the user last reviewed them."""

    def __init__(self):
        self._records = []
        self.total_recorded = 0

    def __len__(self):
        return len(self._records)

    def record(self, miss):
        self._records.append(miss)
        self.total_recorded += 1

    def peek(self):
        return list(self._records)

    def drain(self):
        """Return and clear pending misses (the Figure 5 interaction)."""
        records, self._records = self._records, []
        return records
