"""Conflict representation and repair.

Optimistic replica control means update conflicts can surface at
reintegration: "The system ensures their detection and confinement,
and provides mechanisms to help users recover from them" (section 2.2,
citing Kumar's repair work).  This module is that recovery mechanism
in miniature.

When a CML record fails reintegration, Venus removes it from the log
and parks it here as a :class:`Conflict` that preserves *both* sides:
the local update (the record, with its contents) and a pointer to the
object whose server state now differs.  The user (or an application)
lists conflicts and resolves each one:

* ``keep="theirs"`` — discard the local update; the cache already
  refetches the server's version on demand;
* ``keep="mine"`` — reapply the local update on top of the current
  server state (a fresh store/operation at today's version), making
  the local version the newest one;
* for removed-object conflicts, ``keep="mine"`` recreates the object
  under a recovery name.
"""

from dataclasses import dataclass
from itertools import count
from typing import Optional

from repro.venus.cml import CmlOp


@dataclass
class Conflict:
    """One confined reintegration conflict."""

    ident: int
    record: object                  # the CmlRecord that failed
    reason: str
    path: Optional[str]             # best-known path of the object
    detected_at: float
    resolved: Optional[str] = None  # None | "mine" | "theirs"

    @property
    def op(self):
        return self.record.op

    def describe(self):
        return "#%d %s %s (%s)" % (
            self.ident, self.record.op.value,
            self.path or self.record.fid, self.reason)


class ConflictStore:
    """Venus's parking lot for unresolved conflicts."""

    def __init__(self):
        self._conflicts = []
        self._ids = count(1)

    def __len__(self):
        return len(self._conflicts)

    def add(self, record, reason, path, now):
        conflict = Conflict(ident=next(self._ids), record=record,
                            reason=reason, path=path, detected_at=now)
        self._conflicts.append(conflict)
        return conflict

    def pending(self):
        return [c for c in self._conflicts if c.resolved is None]

    def all(self):
        return list(self._conflicts)

    def get(self, ident):
        for conflict in self._conflicts:
            if conflict.ident == ident:
                return conflict
        raise KeyError("no conflict #%d" % ident)


class Repairer:
    """Applies resolutions through the Venus API."""

    #: Name suffix for objects recreated during repair.
    RECOVERY_SUFFIX = ".conflict"

    def __init__(self, venus):
        self.venus = venus

    def resolve(self, conflict, keep):
        """Generator: resolve one conflict.

        ``keep="theirs"`` simply marks it resolved — the cache refetches
        the server version on next use.  ``keep="mine"`` reapplies the
        local update against current server state.
        """
        if conflict.resolved is not None:
            raise ValueError("conflict #%d already resolved"
                             % conflict.ident)
        if keep not in ("mine", "theirs"):
            raise ValueError("keep must be 'mine' or 'theirs'")
        if keep == "theirs":
            conflict.resolved = "theirs"
            return conflict
        yield from self._reapply(conflict)
        conflict.resolved = "mine"
        return conflict

    def _reapply(self, conflict):
        venus = self.venus
        record = conflict.record
        path = conflict.path
        if path is None:
            raise ValueError(
                "cannot reapply conflict #%d: path unknown"
                % conflict.ident)
        if record.op is CmlOp.STORE:
            try:
                # Refresh the object's status first: the reapplied
                # store must be logged against the *current* server
                # version or it would just conflict again.
                yield from venus.stat(path)
                yield from venus.write_file(path, record.content)
            except FileNotFoundError:
                # The object was removed on the server: recreate it
                # under a recovery name beside the original.
                yield from venus.write_file(
                    path + self.RECOVERY_SUFFIX, record.content)
        elif record.op in (CmlOp.CREATE, CmlOp.MKDIR, CmlOp.SYMLINK):
            # A name collision: recreate under a recovery name.
            recovery = path + self.RECOVERY_SUFFIX
            if record.op is CmlOp.MKDIR:
                yield from venus.mkdir(recovery)
            elif record.op is CmlOp.SYMLINK:
                yield from venus.symlink(record.target or "", recovery)
            else:
                yield from venus.write_file(
                    recovery, record.content if record.content
                    is not None else b"")
        elif record.op is CmlOp.UNLINK:
            try:
                yield from venus.unlink(path)
            except FileNotFoundError:
                pass    # already gone: nothing to keep
        elif record.op is CmlOp.RMDIR:
            try:
                yield from venus.rmdir(path)
            except (FileNotFoundError, OSError):
                pass    # gone, or no longer empty — leave it
        elif record.op is CmlOp.SETATTR:
            try:
                yield from venus.setattr(path, record.attrs or {})
            except FileNotFoundError:
                pass
        else:
            raise ValueError("cannot reapply %s conflicts"
                             % record.op.value)
