"""Venus states and transitions (Figure 2).

Venus is *hoarding* when strongly connected, *emulating* when
disconnected, and *write disconnected* when weakly connected.  The
original transient "reintegrating" state became the stable write
disconnected state when trickle reintegration made update propagation
an ongoing background activity (section 4.3.2).

The legal transitions:

* hoarding -> emulating          on disconnection
* hoarding -> write disconnected on weak connectivity
* emulating -> write disconnected on ANY connection, however strong
* write disconnected -> emulating on disconnection
* write disconnected -> hoarding  once strongly connected AND all
  outstanding updates have been reintegrated

There is deliberately no emulating -> hoarding edge: a reconnecting
client always passes through write disconnected while its CML drains.
"""

import enum


class VenusState(enum.Enum):
    HOARDING = "hoarding"
    EMULATING = "emulating"
    WRITE_DISCONNECTED = "write_disconnected"


_LEGAL = {
    (VenusState.HOARDING, VenusState.EMULATING),
    (VenusState.HOARDING, VenusState.WRITE_DISCONNECTED),
    (VenusState.EMULATING, VenusState.WRITE_DISCONNECTED),
    (VenusState.WRITE_DISCONNECTED, VenusState.EMULATING),
    (VenusState.WRITE_DISCONNECTED, VenusState.HOARDING),
}


class IllegalTransition(Exception):
    pass


class VenusStateMachine:
    """Tracks the current state, enforcing Figure 2's edges."""

    def __init__(self, initial=VenusState.EMULATING):
        self.state = initial
        self.transitions = []     # (time, from, to) history
        self._listeners = []

    def on_transition(self, callback):
        """Register ``callback(old, new)`` for every transition."""
        self._listeners.append(callback)

    def transition(self, new_state, now=0.0):
        """Move to ``new_state``; no-op if already there."""
        if new_state is self.state:
            return False
        if (self.state, new_state) not in _LEGAL:
            raise IllegalTransition(
                "%s -> %s" % (self.state.value, new_state.value))
        old = self.state
        self.state = new_state
        self.transitions.append((now, old, new_state))
        for listener in self._listeners:
            listener(old, new_state)
        return True

    @property
    def connected(self):
        return self.state is not VenusState.EMULATING

    @property
    def logging_updates(self):
        """True when updates go to the CML rather than through RPCs."""
        return self.state is not VenusState.HOARDING
