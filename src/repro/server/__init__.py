"""The Coda file server.

A small collection of trusted servers exports the volume name space to
untrusted clients.  This package provides the Vice RPC interface
(fetch, store, directory operations), the callback machinery at both
object and volume granularity (section 4.2), and the transactional
reintegration endpoint that replays client modify logs atomically
(section 4.3.3), including fragmented transfer of large files with
resumption (section 4.3.5).
"""

from repro.server.callbacks import CallbackRegistry
from repro.server.reintegration import ConflictError, ReintegrationOutcome
from repro.server.store import FragmentStore, ServerCosts
from repro.server.vice import CodaServer

__all__ = [
    "CallbackRegistry",
    "CodaServer",
    "ConflictError",
    "FragmentStore",
    "ReintegrationOutcome",
    "ServerCosts",
]
