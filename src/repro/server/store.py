"""Server-side persistence costs and fragment assembly.

Fragmented transfer (section 4.3.5): when a single store record's file
is larger than the reintegration chunk size, Venus ships it as a
series of fragments of at most the chunk size.  "Atomicity is
preserved in spite of fragmentation because the server does not
logically attempt reintegration until it has received the entire
file."  The :class:`FragmentStore` holds partially shipped files, keyed
by client and CML sequence number, so an interrupted transfer resumes
after the last successful fragment rather than restarting.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ServerCosts:
    """CPU/disk time the server spends above the transport layer.

    ``reintegration_fixed`` is the per-transaction commitment cost whose
    amortization motivates large chunks at high bandwidth (section
    4.3.5); the others are per-item handling costs.
    """

    reintegration_fixed: float = 0.150
    per_record: float = 0.003
    per_object_validate: float = 0.0005
    per_operation: float = 0.005      # connected-mode update ops
    per_fetch: float = 0.005          # status or data fetch setup


@dataclass
class _PartialFile:
    total_size: int
    fragments: dict = field(default_factory=dict)   # index -> bytes

    @property
    def received(self):
        return sum(self.fragments.values())

    @property
    def complete(self):
        return self.received >= self.total_size


class FragmentStore:
    """Accumulates pre-shipped file fragments awaiting reintegration."""

    def __init__(self):
        self._partial = {}

    def begin(self, key, total_size):
        """Ensure an assembly buffer for ``key`` exists (idempotent).

        A retry with a different total size discards the stale buffer —
        the client must have re-logged the store with new contents.
        """
        entry = self._partial.get(key)
        if entry is None or entry.total_size != total_size:
            entry = _PartialFile(total_size=total_size)
            self._partial[key] = entry
        return entry

    def put(self, key, index, nbytes, total_size):
        """Record fragment ``index``; returns bytes received so far."""
        entry = self.begin(key, total_size)
        entry.fragments[index] = nbytes
        return entry.received

    def received(self, key):
        entry = self._partial.get(key)
        return entry.received if entry else 0

    def fragments_present(self, key):
        entry = self._partial.get(key)
        return sorted(entry.fragments) if entry else []

    def is_complete(self, key, total_size):
        entry = self._partial.get(key)
        return entry is not None and entry.total_size == total_size \
            and entry.complete

    def consume(self, key):
        """Drop the buffer once its store record has been applied."""
        self._partial.pop(key, None)
