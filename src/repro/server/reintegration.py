"""Transactional replay of client modify logs.

Reintegration is atomic: the chunk's records are first *all* validated
against current server state, and only if every one passes are they
applied.  "A failure leaves behind no server state that would hinder a
future retry" (section 4.3.3).  A record that fails validation is a
conflict; the server reports the conflicting sequence numbers and
applies nothing.

Conflict rules (optimistic replica control, after Kumar):

* store/setattr: the server object's version must equal the record's
  base version (write/write conflict otherwise), and the object must
  still exist (update/remove conflict).
* create/mkdir/symlink: the parent must exist and the name be free.
* unlink: the object must exist and match the base version.
* rmdir: the directory must exist and be empty.
* rename: source must exist; destination name must be free.
"""

from dataclasses import dataclass, field

from repro.fs.objects import ObjectType, Vnode
from repro.venus.cml import CmlOp


class ConflictError(Exception):
    """Raised internally when a record fails validation."""

    def __init__(self, record, reason):
        self.record = record
        self.reason = reason
        super().__init__("%s: %s" % (record, reason))


@dataclass
class ReintegrationOutcome:
    """Result of one reintegration attempt."""

    ok: bool
    conflicts: list = field(default_factory=list)   # (seqno, reason)
    new_versions: dict = field(default_factory=dict)  # fid -> version
    volume_stamps: dict = field(default_factory=dict)  # volid -> stamp
    applied: int = 0


class Reintegrator:
    """Validates and applies CML chunks against a volume registry."""

    def __init__(self, registry, sim=None):
        self.registry = registry
        # Optional: lets server-side replay emit trace events.  The
        # replay logic itself never consults simulation time.
        self.sim = sim
        # Records already applied, by client: the analogue of the
        # store-ids Coda keeps in RVM so reintegration is idempotent.
        # client -> {seqno -> {fid -> version assigned at first apply}}
        self._applied = {}
        self.duplicates_skipped = 0

    def _observe(self, kind, **fields):
        if self.sim is None:
            return
        obs = self.sim.obs
        if obs.enabled:
            # repro: allow[OBS001] forwarding helper: every call site passes a
            # literal kind the linter checks there, and the closed-taxonomy
            # raise in TraceRecorder still guards the runtime.
            obs.event(kind, **fields)

    # -- idempotent replay ----------------------------------------------

    def is_applied(self, client, seqno):
        """True if this client's record ``seqno`` was already applied."""
        return seqno in self._applied.get(client, ())

    def applied_versions(self, client, seqno):
        """fid -> version mapping stored when the record first applied."""
        return self._applied.get(client, {}).get(seqno, {})

    def mark_applied(self, client, records, new_versions):
        """Durably note records as applied (survives server crashes)."""
        marks = self._applied.setdefault(client, {})
        for record in records:
            marks[record.seqno] = {
                fid: version for fid, version in new_versions.items()
                if fid == record.fid}

    def note_duplicates(self, client, records):
        """Account a batch of re-shipped, already-applied records."""
        self.duplicates_skipped += len(records)
        if self.sim is None:
            return
        obs = self.sim.obs
        if obs.enabled:
            obs.metrics.counter("reintegration.duplicates",
                                client=client).inc(len(records))
            obs.event("reintegration_duplicate", client=client,
                      seqnos=[r.seqno for r in records])

    # -- validation ------------------------------------------------------

    def validate(self, records, own_bumps=None):
        """Return a list of (seqno, reason) conflicts (empty if clean).

        Validation runs against a scratch copy of the affected state so
        that intra-chunk dependencies (create then store) are honoured.
        ``own_bumps`` (fid -> count) discounts version bumps the server
        already applied on this client's behalf — records of a chunk
        re-shipped after a crash whose duplicate prefix was filtered
        out; without the discount the client's own earlier updates
        would read as another client's and conflict falsely.
        """
        conflicts = []
        shadow = _ShadowState(self.registry)
        if own_bumps:
            shadow._own_bumps.update(own_bumps)
        for record in records:
            try:
                self._check(shadow, record)
                shadow.apply(record)
            except ConflictError as conflict:
                conflicts.append((record.seqno, conflict.reason))
        self._observe("reintegration_validate", records=len(records),
                      conflicts=len(conflicts))
        return conflicts

    def _check(self, shadow, record):
        op = record.op
        if op in (CmlOp.STORE, CmlOp.SETATTR):
            vnode = shadow.get(record.fid)
            if vnode is None:
                raise ConflictError(record, "object was removed")
            if (record.base_version is not None
                    and shadow.base_version(record.fid, vnode)
                    != record.base_version):
                raise ConflictError(record, "update/update conflict")
        elif op in (CmlOp.CREATE, CmlOp.MKDIR, CmlOp.SYMLINK):
            parent = shadow.get(record.parent)
            if parent is None or not parent.is_dir():
                raise ConflictError(record, "parent directory missing")
            if parent.lookup(record.name) is not None:
                raise ConflictError(record, "name collision")
        elif op is CmlOp.UNLINK:
            parent = shadow.get(record.parent)
            if parent is None or parent.lookup(record.name) != record.fid:
                raise ConflictError(record, "object already removed")
            vnode = shadow.get(record.fid)
            if (vnode is not None and record.base_version is not None
                    and shadow.base_version(record.fid, vnode)
                    != record.base_version):
                raise ConflictError(record, "update/remove conflict")
        elif op is CmlOp.RMDIR:
            vnode = shadow.get(record.fid)
            if vnode is None:
                raise ConflictError(record, "directory already removed")
            if vnode.children:
                raise ConflictError(record, "directory not empty")
        elif op is CmlOp.RENAME:
            parent = shadow.get(record.parent)
            if parent is None or parent.lookup(record.name) != record.fid:
                raise ConflictError(record, "rename source missing")
            target_dir = shadow.get(record.to_parent)
            if target_dir is None or not target_dir.is_dir():
                raise ConflictError(record, "rename target dir missing")
            if target_dir.lookup(record.to_name) is not None:
                raise ConflictError(record, "rename target exists")
        elif op is CmlOp.LINK:
            parent = shadow.get(record.parent)
            vnode = shadow.get(record.fid)
            if parent is None or vnode is None:
                raise ConflictError(record, "link endpoint missing")
            if parent.lookup(record.name) is not None:
                raise ConflictError(record, "name collision")

    # -- application -----------------------------------------------------

    def apply(self, records, mtime):
        """Apply pre-validated records for real; returns outcome data."""
        new_versions = {}
        touched_volumes = set()
        for record in records:
            volume = self.registry.by_id(record.fid.volume)
            self._apply_one(volume, record, mtime)
            vnode = volume.get(record.fid)
            if vnode is not None:
                new_versions[record.fid] = vnode.version
            touched_volumes.add(volume.volid)
        stamps = {volid: self.registry.by_id(volid).stamp
                  for volid in touched_volumes}
        self._observe("reintegration_apply", records=len(records),
                      volumes=len(touched_volumes))
        return new_versions, stamps

    def _apply_one(self, volume, record, mtime):
        op = record.op
        if op is CmlOp.STORE:
            vnode = volume.require(record.fid)
            vnode.content = record.content
            volume.bump(vnode, mtime)
        elif op is CmlOp.SETATTR:
            vnode = volume.require(record.fid)
            volume.bump(vnode, mtime)
        elif op in (CmlOp.CREATE, CmlOp.MKDIR, CmlOp.SYMLINK):
            otype = {CmlOp.CREATE: ObjectType.FILE,
                     CmlOp.MKDIR: ObjectType.DIRECTORY,
                     CmlOp.SYMLINK: ObjectType.SYMLINK}[op]
            vnode = Vnode(record.fid, otype, mtime=mtime,
                          content=record.content, target=record.target)
            volume.add(vnode)
            parent = volume.require(record.parent)
            parent.children[record.name] = record.fid
            volume.bump(parent, mtime)
            volume.stamp += 1  # the new object itself
        elif op is CmlOp.UNLINK:
            parent = volume.require(record.parent)
            parent.children.pop(record.name, None)
            volume.bump(parent, mtime)
            vnode = volume.get(record.fid)
            if vnode is not None:
                vnode.link_count -= 1
                if vnode.link_count <= 0:
                    volume.remove(record.fid)
        elif op is CmlOp.RMDIR:
            parent = volume.require(record.parent)
            parent.children.pop(record.name, None)
            volume.bump(parent, mtime)
            volume.remove(record.fid)
        elif op is CmlOp.RENAME:
            parent = volume.require(record.parent)
            parent.children.pop(record.name, None)
            volume.bump(parent, mtime)
            target_dir = volume.require(record.to_parent)
            target_dir.children[record.to_name] = record.fid
            volume.bump(target_dir, mtime)
        elif op is CmlOp.LINK:
            parent = volume.require(record.parent)
            parent.children[record.name] = record.fid
            vnode = volume.require(record.fid)
            vnode.link_count += 1
            volume.bump(parent, mtime)


class _ShadowState:
    """Copy-on-write view of the registry for conflict-free validation."""

    def __init__(self, registry):
        self.registry = registry
        self._clones = {}
        self._deleted = set()
        self._created = {}
        self._own_bumps = {}     # fid -> versions added by this chunk

    def get(self, fid):
        if fid is None or fid in self._deleted:
            return None
        if fid in self._clones:
            return self._clones[fid]
        if fid in self._created:
            return self._created[fid]
        try:
            volume = self.registry.by_id(fid.volume)
        except KeyError:
            return None
        vnode = volume.get(fid)
        if vnode is None:
            return None
        clone = vnode.clone()
        self._clones[fid] = clone
        return clone

    def base_version(self, fid, vnode):
        """The version this chunk's client saw before its own updates.

        A chunk may store the same file twice (with optimizations off);
        the client logged both against the pre-chunk server version, so
        versions added by the chunk itself are discounted — the analogue
        of Coda recognizing its own store-ids.
        """
        return vnode.version - self._own_bumps.get(fid, 0)

    def apply(self, record):
        """Apply a record to the shadow only."""
        op = record.op
        if op is CmlOp.STORE:
            vnode = self.get(record.fid)
            vnode.content = record.content
            vnode.version += 1
            self._own_bumps[record.fid] = \
                self._own_bumps.get(record.fid, 0) + 1
        elif op is CmlOp.SETATTR:
            self.get(record.fid).version += 1
            self._own_bumps[record.fid] = \
                self._own_bumps.get(record.fid, 0) + 1
        elif op in (CmlOp.CREATE, CmlOp.MKDIR, CmlOp.SYMLINK):
            otype = {CmlOp.CREATE: ObjectType.FILE,
                     CmlOp.MKDIR: ObjectType.DIRECTORY,
                     CmlOp.SYMLINK: ObjectType.SYMLINK}[op]
            vnode = Vnode(record.fid, otype, content=record.content,
                          target=record.target)
            self._created[record.fid] = vnode
            self._deleted.discard(record.fid)
            self.get(record.parent).children[record.name] = record.fid
        elif op is CmlOp.UNLINK:
            self.get(record.parent).children.pop(record.name, None)
            vnode = self.get(record.fid)
            if vnode is not None:
                vnode.link_count -= 1
                if vnode.link_count <= 0:
                    self._mark_deleted(record.fid)
        elif op is CmlOp.RMDIR:
            self.get(record.parent).children.pop(record.name, None)
            self._mark_deleted(record.fid)
        elif op is CmlOp.RENAME:
            self.get(record.parent).children.pop(record.name, None)
            self.get(record.to_parent).children[record.to_name] = record.fid
        elif op is CmlOp.LINK:
            self.get(record.parent).children[record.name] = record.fid
            vnode = self.get(record.fid)
            if vnode is not None:
                vnode.link_count += 1

    def _mark_deleted(self, fid):
        self._deleted.add(fid)
        self._clones.pop(fid, None)
        self._created.pop(fid, None)
