"""Callback registry at object and volume granularity.

A callback is a server's promise to notify a client before its cached
copy of an object goes stale.  The paper adds *volume callbacks*: when
a client obtains or validates a volume version stamp, the server
promises to notify it when *any* object in the volume changes.  Volume
callbacks trade precision of invalidation for speed of validation —
"an excellent performance tradeoff for typical Unix workloads."
"""

from collections import defaultdict


class CallbackRegistry:
    """Tracks which clients hold callbacks on which objects/volumes."""

    def __init__(self):
        self._object_holders = defaultdict(set)   # fid -> {client}
        self._volume_holders = defaultdict(set)   # volid -> {client}
        self.object_breaks = 0
        self.volume_breaks = 0

    # -- establishment -------------------------------------------------

    def add_object(self, client, fid):
        self._object_holders[fid].add(client)

    def add_volume(self, client, volid):
        self._volume_holders[volid].add(client)

    def has_object(self, client, fid):
        return client in self._object_holders.get(fid, ())

    def has_volume(self, client, volid):
        return client in self._volume_holders.get(volid, ())

    # -- queries -------------------------------------------------------

    def breaks_for_update(self, updater, fid):
        """Clients to notify when ``updater`` changes ``fid``.

        All other holders lose their object callback on ``fid`` and
        their volume callback on its volume.  The updater keeps both:
        connected-mode update replies carry the new object version and
        volume stamp, so its cached state remains current.
        """
        object_clients = self._object_holders.pop(fid, set())
        volume_clients = set(self._volume_holders.get(fid.volume, ()))
        if updater in object_clients:
            object_clients.discard(updater)
            self._object_holders[fid].add(updater)
        volume_clients.discard(updater)
        self._volume_holders[fid.volume] -= volume_clients
        self.object_breaks += len(object_clients)
        self.volume_breaks += len(volume_clients)
        return object_clients, volume_clients

    def drop_client(self, client):
        """Forget every promise to ``client`` (it is unreachable)."""
        for holders in self._object_holders.values():
            holders.discard(client)
        for holders in self._volume_holders.values():
            holders.discard(client)

    def total_promises(self):
        """Outstanding promises across all objects and volumes.

        The invariant checker uses this to assert the registry is
        volatile: a freshly restarted server must report zero.
        """
        return (sum(len(holders) for holders in
                    self._object_holders.values())
                + sum(len(holders) for holders in
                      self._volume_holders.values()))

    def object_holder_count(self, fid):
        return len(self._object_holders.get(fid, ()))

    def volume_holder_count(self, volid):
        return len(self._volume_holders.get(volid, ()))
