"""The Coda server: Vice RPC handlers over volumes and callbacks.

One :class:`CodaServer` owns a volume registry, a callback registry, a
fragment store, and an RPC2 endpoint.  Clients are identified by their
node names (the transport supplies them), so no separate registration
step is needed.  Callback breaks are delivered asynchronously by RPC
to the client's own endpoint; an unreachable client simply loses all
its callbacks, exactly as a real server discards promises it can no
longer keep.
"""

from repro.fs.namespace import VolumeRegistry
from repro.fs.objects import ObjectType, Vnode
from repro.fs.volume import Volume
from repro.rpc2.endpoint import Rpc2Endpoint
from repro.rpc2.errors import ConnectionDead
from repro.server.callbacks import CallbackRegistry
from repro.server.reintegration import Reintegrator
from repro.server.store import FragmentStore, ServerCosts
from repro.rpc2.packets import CODA_PORT


class SizedResult(dict):
    """An RPC result dict with an explicit wire size."""

    def __init__(self, data, wire_size):
        super().__init__(data)
        self.wire_size = wire_size


class CodaServer:
    """A file server exporting volumes to Venus clients."""

    def __init__(self, sim, network, node, host, costs=None,
                 default_bps=9600.0):
        self.sim = sim
        self.network = network
        self.node = node
        self.host = host
        self.default_bps = default_bps
        self.costs = costs or ServerCosts()
        self.registry = VolumeRegistry()
        self.callbacks = CallbackRegistry()
        self.fragments = FragmentStore()
        self.reintegrator = Reintegrator(self.registry, sim=sim)
        self.endpoint = Rpc2Endpoint(sim, network, node, CODA_PORT, host,
                                     default_bps=default_bps)
        self._client_conns = {}
        self._volid_counter = 100
        self.reintegrations = 0
        self.reintegration_conflicts = 0
        self.crashed = False
        self.crashes = 0
        self._register_handlers()

    # ------------------------------------------------------------------
    # Crash and recovery (repro.faults)

    def crash(self):
        """Simulate a server crash: volatile state vanishes, disk stays.

        The store — volumes, vnodes, volume version stamps, and the
        reintegrator's applied-record marks (Coda keeps store-ids in
        RVM) — survives.  Callback promises, partially assembled
        fragments, per-connection RPC state, and every running handler
        process are volatile and are lost, which is what forces clients
        back through rapid validation when the server returns.
        """
        self.crashed = True
        self.crashes += 1
        killed = self.endpoint.shutdown()
        self.callbacks = CallbackRegistry()
        self.fragments = FragmentStore()
        self._client_conns = {}
        return killed

    def restart(self):
        """Bring a crashed server back up with a fresh endpoint."""
        if not self.crashed:
            raise RuntimeError("server %s is not down" % self.node)
        next_conn_id = self.endpoint._next_conn_id
        self.endpoint = Rpc2Endpoint(self.sim, self.network, self.node,
                                     CODA_PORT, self.host,
                                     default_bps=self.default_bps,
                                     first_conn_id=next_conn_id)
        self.crashed = False
        self._register_handlers()
        return self.endpoint

    # ------------------------------------------------------------------
    # Volume administration

    def create_volume(self, name, mount_prefix):
        """Create and mount a new volume; returns it."""
        self._volid_counter += 1
        volume = Volume(self._volid_counter, name)
        self.registry.mount(mount_prefix, volume)
        return volume

    # ------------------------------------------------------------------
    # Callback breaking

    def _conn_to(self, client):
        conn = self._client_conns.get(client)
        if conn is None:
            conn = self.endpoint.connect(client)
            self._client_conns[client] = conn
        return conn

    def _break_callbacks(self, updater, fid):
        object_clients, volume_clients = \
            self.callbacks.breaks_for_update(updater, fid)
        notify = {}
        for client in object_clients:
            notify.setdefault(client, {"fids": [], "volumes": []})
            notify[client]["fids"].append(fid)
        for client in volume_clients:
            notify.setdefault(client, {"fids": [], "volumes": []})
            notify[client]["volumes"].append(fid.volume)
        # notify was populated from hash-ordered holder sets, so pick a
        # canonical delivery order before scheduling anything.
        for client in sorted(notify):
            self.sim.process(self._deliver_break(client, notify[client]),
                             name="break-%s" % client, owner=self.node)

    def _deliver_break(self, client, breaks):
        conn = self._conn_to(client)
        try:
            yield conn.call("BreakCallback", breaks, max_retries=2)
        except ConnectionDead:
            # The client is unreachable; it must revalidate on
            # reconnection anyway, so just forget all its callbacks.
            self.callbacks.drop_client(client)

    # ------------------------------------------------------------------
    # Handlers

    def _register_handlers(self):
        ep = self.endpoint
        ep.register("GetAttr", self._h_getattr)
        ep.register("ValidateAttrs", self._h_validate_attrs)
        ep.register("ValidateVolumes", self._h_validate_volumes)
        ep.register("GetVolumeStamps", self._h_get_volume_stamps)
        ep.register("Fetch", self._h_fetch)
        ep.register("Store", self._h_store)
        ep.register("MakeObject", self._h_make_object)
        ep.register("Remove", self._h_remove)
        ep.register("Rename", self._h_rename)
        ep.register("SetAttr", self._h_setattr)
        ep.register("Link", self._h_link)
        ep.register("PutFragment", self._h_put_fragment)
        ep.register("Reintegrate", self._h_reintegrate)

    def _vnode(self, fid):
        try:
            volume = self.registry.by_id(fid.volume)
        except KeyError:
            return None, None
        return volume, volume.get(fid)

    def _h_getattr(self, ctx, args):
        yield self.sim.sleep(self.costs.per_fetch)
        volume, vnode = self._vnode(args["fid"])
        if vnode is None:
            return {"error": "nofile"}
        self.callbacks.add_object(ctx.peer, vnode.fid)
        return SizedResult({"status": vnode.status(),
                            "volume_stamp": volume.stamp}, 100)

    def _h_validate_attrs(self, ctx, args):
        """Batched per-object validation (the pre-volume-callback path)."""
        results = {}
        reply_size = 8
        for fid, version in args["pairs"]:
            yield self.sim.sleep(self.costs.per_object_validate)
            _volume, vnode = self._vnode(fid)
            if vnode is not None and vnode.version == version:
                results[fid] = (True, None)
                self.callbacks.add_object(ctx.peer, fid)
                reply_size += 4
            elif vnode is not None:
                results[fid] = (False, vnode.status())
                self.callbacks.add_object(ctx.peer, fid)
                reply_size += 100
            else:
                results[fid] = (False, None)
                reply_size += 4
        return SizedResult({"results": results}, reply_size)

    def _h_validate_volumes(self, ctx, args):
        """Batched volume-stamp validation (section 4.2.1).

        Valid stamps acquire a volume callback as a side effect.
        """
        results = {}
        # Canonical processing order: the reply timing must not depend
        # on how the client happened to assemble its stamp dict.
        for volid, stamp in sorted(args["stamps"].items()):
            yield self.sim.sleep(self.costs.per_object_validate)
            try:
                volume = self.registry.by_id(volid)
            except KeyError:
                results[volid] = (False, None)
                continue
            if volume.stamp == stamp:
                self.callbacks.add_volume(ctx.peer, volid)
                results[volid] = (True, stamp)
            else:
                results[volid] = (False, volume.stamp)
        return SizedResult({"results": results},
                           8 + 8 * len(results))

    def _h_get_volume_stamps(self, ctx, args):
        results = {}
        for volid in args["volumes"]:
            yield self.sim.sleep(self.costs.per_object_validate)
            try:
                volume = self.registry.by_id(volid)
            except KeyError:
                continue
            self.callbacks.add_volume(ctx.peer, volid)
            results[volid] = volume.stamp
        return SizedResult({"stamps": results}, 8 + 8 * len(results))

    def _h_fetch(self, ctx, args):
        yield self.sim.sleep(self.costs.per_fetch)
        volume, vnode = self._vnode(args["fid"])
        if vnode is None:
            return {"error": "nofile"}
        self.callbacks.add_object(ctx.peer, vnode.fid)
        result = SizedResult({"status": vnode.status(),
                              "volume_stamp": volume.stamp,
                              "content": vnode.content,
                              "children": dict(vnode.children or {}),
                              "target": vnode.target}, 150)
        return result, vnode.length

    def _h_store(self, ctx, args):
        yield self.sim.sleep(self.costs.per_operation)
        volume, vnode = self._vnode(args["fid"])
        if vnode is None:
            return {"error": "nofile"}
        base = args.get("base_version")
        if base is not None and vnode.version != base:
            return {"error": "conflict"}
        vnode.content = args["content"]
        volume.bump(vnode, self.sim.now)
        self._break_callbacks(ctx.peer, vnode.fid)
        self.callbacks.add_object(ctx.peer, vnode.fid)
        return {"version": vnode.version, "volume_stamp": volume.stamp}

    def _h_make_object(self, ctx, args):
        """Create a file, directory, or symlink (connected mode)."""
        yield self.sim.sleep(self.costs.per_operation)
        volume, parent = self._vnode(args["parent"])
        if parent is None or not parent.is_dir():
            return {"error": "nofile"}
        if parent.lookup(args["name"]) is not None:
            return {"error": "exists"}
        if volume.get(args["fid"]) is not None:
            return {"error": "exists"}   # fid already in use
        otype = ObjectType(args["otype"])
        vnode = Vnode(args["fid"], otype, mtime=self.sim.now,
                      content=args.get("content"),
                      target=args.get("target"))
        volume.add(vnode)
        parent.children[args["name"]] = vnode.fid
        volume.bump(parent, self.sim.now)
        volume.stamp += 1
        self._break_callbacks(ctx.peer, parent.fid)
        self.callbacks.add_object(ctx.peer, parent.fid)
        self.callbacks.add_object(ctx.peer, vnode.fid)
        return {"status": vnode.status(), "parent_version": parent.version,
                "volume_stamp": volume.stamp}

    def _h_remove(self, ctx, args):
        """Unlink a file/symlink or remove an empty directory."""
        yield self.sim.sleep(self.costs.per_operation)
        volume, parent = self._vnode(args["parent"])
        if parent is None:
            return {"error": "nofile"}
        fid = parent.lookup(args["name"])
        if fid is None:
            return {"error": "nofile"}
        vnode = volume.get(fid)
        if vnode is not None and vnode.is_dir():
            if vnode.children:
                return {"error": "notempty"}
            volume.remove(fid)
        elif vnode is not None:
            vnode.link_count -= 1
            if vnode.link_count <= 0:
                volume.remove(fid)
        del parent.children[args["name"]]
        volume.bump(parent, self.sim.now)
        self._break_callbacks(ctx.peer, fid)
        self._break_callbacks(ctx.peer, parent.fid)
        self.callbacks.add_object(ctx.peer, parent.fid)
        return {"parent_version": parent.version,
                "volume_stamp": volume.stamp}

    def _h_rename(self, ctx, args):
        yield self.sim.sleep(self.costs.per_operation)
        volume, src_dir = self._vnode(args["parent"])
        if src_dir is None:
            return {"error": "nofile"}
        fid = src_dir.lookup(args["name"])
        if fid is None:
            return {"error": "nofile"}
        _vol2, dst_dir = self._vnode(args["to_parent"])
        if dst_dir is None or not dst_dir.is_dir():
            return {"error": "nofile"}
        if dst_dir.lookup(args["to_name"]) is not None:
            return {"error": "exists"}
        del src_dir.children[args["name"]]
        dst_dir.children[args["to_name"]] = fid
        volume.bump(src_dir, self.sim.now)
        volume.bump(dst_dir, self.sim.now)
        self._break_callbacks(ctx.peer, src_dir.fid)
        self._break_callbacks(ctx.peer, dst_dir.fid)
        return {"volume_stamp": volume.stamp}

    def _h_setattr(self, ctx, args):
        yield self.sim.sleep(self.costs.per_operation)
        volume, vnode = self._vnode(args["fid"])
        if vnode is None:
            return {"error": "nofile"}
        base = args.get("base_version")
        if base is not None and vnode.version != base:
            return {"error": "conflict"}
        volume.bump(vnode, self.sim.now)
        self._break_callbacks(ctx.peer, vnode.fid)
        self.callbacks.add_object(ctx.peer, vnode.fid)
        return {"version": vnode.version, "volume_stamp": volume.stamp}

    def _h_link(self, ctx, args):
        yield self.sim.sleep(self.costs.per_operation)
        volume, parent = self._vnode(args["parent"])
        _vol2, vnode = self._vnode(args["fid"])
        if parent is None or vnode is None:
            return {"error": "nofile"}
        if parent.lookup(args["name"]) is not None:
            return {"error": "exists"}
        parent.children[args["name"]] = vnode.fid
        vnode.link_count += 1
        volume.bump(parent, self.sim.now)
        self._break_callbacks(ctx.peer, parent.fid)
        return {"volume_stamp": volume.stamp}

    # ------------------------------------------------------------------
    # Weak-connectivity machinery

    def _h_put_fragment(self, ctx, args):
        """Accept one fragment of a large file awaiting reintegration."""
        key = (ctx.peer, args["key"])
        received = self.fragments.put(key, args["index"],
                                      ctx.received_bytes,
                                      args["total_size"])
        return {"received": received}

    def _h_reintegrate(self, ctx, args):
        """Atomically replay a chunk of a client's CML (section 4.3.3).

        Replay is idempotent: records the server already applied for
        this client (identified by their CML sequence numbers, the
        moral equivalent of Coda store-ids kept in RVM) are filtered
        out and acknowledged from the stored marks rather than applied
        twice.  A client that crashed after the server committed a
        chunk but before the reply arrived can therefore safely re-ship
        it after recovery.
        """
        records = args["records"]
        preshipped = set(args.get("preshipped", ()))
        self.reintegrations += 1
        fresh = [r for r in records
                 if not self.reintegrator.is_applied(ctx.peer, r.seqno)]
        duplicates = [r for r in records
                      if self.reintegrator.is_applied(ctx.peer, r.seqno)]
        if duplicates:
            self.reintegrator.note_duplicates(ctx.peer, duplicates)
        # Fragmented stores must be fully present before we even try
        # (already-applied records consumed their fragments last time).
        missing = []
        for record in fresh:
            if record.seqno in preshipped:
                key = (ctx.peer, record.seqno)
                if not self.fragments.is_complete(key, record.content.size):
                    missing.append(record.seqno)
        if missing:
            return {"status": "missing_data", "missing": missing}
        yield self.sim.sleep(self.costs.reintegration_fixed
                               + self.costs.per_record * len(records))
        if fresh:
            # Versions the filtered duplicates already added count as
            # this client's own, not as foreign updates.
            prior_bumps = {}
            for record in duplicates:
                if record.op.value in ("store", "setattr"):
                    prior_bumps[record.fid] = \
                        prior_bumps.get(record.fid, 0) + 1
            conflicts = self.reintegrator.validate(fresh,
                                                   own_bumps=prior_bumps)
            if conflicts:
                self.reintegration_conflicts += len(conflicts)
                return SizedResult(
                    {"status": "conflict", "conflicts": conflicts},
                    16 + 16 * len(conflicts))
            new_versions, stamps = self.reintegrator.apply(
                fresh, self.sim.now)
            self.reintegrator.mark_applied(ctx.peer, fresh, new_versions)
        else:
            new_versions, stamps = {}, {}
        # Acknowledge duplicates with the versions recorded when they
        # were first applied, and report current stamps for their
        # volumes, so the client's reply handling is oblivious to the
        # replay.
        for record in duplicates:
            stored = self.reintegrator.applied_versions(ctx.peer,
                                                        record.seqno)
            for fid, version in stored.items():
                new_versions.setdefault(fid, version)
            try:
                volume = self.registry.by_id(record.fid.volume)
            except KeyError:
                continue
            stamps.setdefault(volume.volid, volume.stamp)
        for record in fresh:
            if record.seqno in preshipped:
                self.fragments.consume((ctx.peer, record.seqno))
            self._break_callbacks(ctx.peer, record.fid)
            if record.parent is not None:
                self._break_callbacks(ctx.peer, record.parent)
            if record.to_parent is not None:
                self._break_callbacks(ctx.peer, record.to_parent)
        return SizedResult({"status": "ok",
                            "new_versions": new_versions,
                            "volume_stamps": stamps},
                           16 + 12 * len(new_versions))
