"""Server replication: Coda's other availability mechanism.

Section 2.2: Coda "achieves high availability through the use of two
complementary mechanisms", disconnected operation and *server
replication*.  The paper sets replication aside as incidental to weak
connectivity, and so does this reproduction — but the substrate exists
so that clients can keep working through a server failure:

* a :class:`ReplicaSet` presents the one-connection ``call`` interface
  Venus expects while fanning out to a volume storage group (VSG):
  reads go to a preferred server with failover, updates go to every
  reachable replica (read-one/write-all);
* replicas that miss updates while down are *stale*; when one is heard
  from again, the replica set triggers *resolution* — the lagging
  volume is brought to equality with an up-to-date replica before use,
  the server-to-server analogue of Coda's resolution protocol;
* only when no replica responds does a call raise
  :class:`ConnectionDead`, so Venus's disconnection machinery engages
  exactly as with a single server.

Scope notes: this is read-one/write-all with whole-volume resolution
by state copy.  Coda's actual protocol (COP1/COP2 with version
vectors and per-object resolution logs) is richer; this substrate
keeps the client-visible behaviour — masking of single-server
failures — without the full machinery.
"""

from repro.rpc2.errors import ConnectionDead
from repro.rpc2.packets import SMALL_ARGS

#: Procedures that mutate server state (fan out to every replica).
UPDATE_PROCS = frozenset({
    "Store", "MakeObject", "Remove", "Rename", "SetAttr", "Link",
    "PutFragment", "Reintegrate",
})


def create_replicated_volume(servers, name, mount_prefix):
    """Create the same volume on every server of a VSG.

    Fresh volumes allocate fids deterministically, so creating them in
    the same order on each server yields identical replicas with
    identical fids.  Returns the list of volume replicas.
    """
    return [server.create_volume(name, mount_prefix)
            for server in servers]


def resolve_replica(source, target, volid):
    """Bring ``target`` server's volume to equality with ``source``'s.

    Used when a replica rejoins after missing updates.  State is
    copied wholesale (vnodes cloned, stamp adopted); the target's
    outstanding callbacks for the volume are dropped, since its
    promises may no longer hold.
    """
    src_volume = source.registry.by_id(volid)
    dst_volume = target.registry.by_id(volid)
    dst_volume.vnodes = {fid: vnode.clone()
                         for fid, vnode in src_volume.vnodes.items()}
    dst_volume.root = dst_volume.vnodes[src_volume.root_fid]
    dst_volume.stamp = src_volume.stamp
    # Fresh counters, seeded past every copied fid, so future
    # allocations on the healed replica cannot collide with state it
    # just adopted.  (Replicas must not share one iterator object.)
    from itertools import count as _count
    highest_vnode = max((fid.vnode for fid in src_volume.vnodes),
                        default=0)
    highest_uniq = max((fid.uniq for fid in src_volume.vnodes),
                       default=0)
    dst_volume._vnode_counter = _count(highest_vnode + 1)
    dst_volume._uniq_counter = _count(highest_uniq + 1)
    for fid in list(src_volume.vnodes):
        target.callbacks._object_holders.pop(fid, None)
    target.callbacks._volume_holders.pop(volid, None)
    return dst_volume


class ReplicaSet:
    """A client's connection to a volume storage group.

    Drop-in for :class:`~repro.rpc2.endpoint.Rpc2Connection`: ``call``
    returns a simulation process yielding a CallResult.
    """

    def __init__(self, endpoint, server_nodes, servers=None):
        if not server_nodes:
            raise ValueError("a replica set needs at least one server")
        self.endpoint = endpoint
        self.server_nodes = list(server_nodes)
        self.connections = {node: endpoint.connect(node)
                            for node in self.server_nodes}
        # Server objects, if provided, enable automatic resolution.
        self._servers = {}
        if servers:
            self._servers = dict(zip(self.server_nodes, servers))
        #: Replicas that missed at least one update while unreachable.
        self.stale = set()
        self.writes_missed = {node: 0 for node in self.server_nodes}
        self.resolutions = 0

    @property
    def sim(self):
        return self.endpoint.sim

    def call(self, procedure, args=None, args_size=SMALL_ARGS,
             send_size=0, max_retries=None):
        kwargs = {}
        if max_retries is not None:
            kwargs["max_retries"] = max_retries
        return self.sim.process(
            self._call(procedure, args, args_size, send_size, kwargs),
            name="vsg-%s" % procedure, owner=self.endpoint.node)

    # ------------------------------------------------------------------

    def _reachable_first(self):
        """Server order for reads: non-stale first, then stale."""
        fresh = [n for n in self.server_nodes if n not in self.stale]
        return fresh + [n for n in self.server_nodes if n in self.stale]

    def _call(self, procedure, args, args_size, send_size, kwargs):
        if procedure in UPDATE_PROCS:
            result = yield from self._update_all(
                procedure, args, args_size, send_size, kwargs)
        else:
            result = yield from self._read_one(
                procedure, args, args_size, kwargs)
        return result

    def _read_one(self, procedure, args, args_size, kwargs):
        last_error = None
        for node in self._reachable_first():
            if node in self.stale:
                healed = yield from self._try_resolve(node)
                if not healed:
                    continue
            try:
                result = yield self.connections[node].call(
                    procedure, args, args_size=args_size, **kwargs)
                return result
            except ConnectionDead as dead:
                last_error = dead
        raise last_error or ConnectionDead("no replica reachable")

    def _update_all(self, procedure, args, args_size, send_size, kwargs):
        result = None
        reached = 0
        for node in list(self.server_nodes):
            if node in self.stale:
                healed = yield from self._try_resolve(node)
                if not healed:
                    self.writes_missed[node] += 1
                    continue
            try:
                outcome = yield self.connections[node].call(
                    procedure, args, args_size=args_size,
                    send_size=send_size, **kwargs)
                reached += 1
                if result is None:
                    result = outcome
            except ConnectionDead:
                # The replica missed this update: mark it stale so it
                # is resolved before anyone reads from it again.
                self.stale.add(node)
                self.writes_missed[node] += 1
        if reached == 0:
            raise ConnectionDead("no replica accepted the update")
        return result

    def _try_resolve(self, node):
        """Generator: heal a stale replica if it is reachable again."""
        try:
            yield self.endpoint.ping(node, timeout=5.0)
        except ConnectionDead:
            return False
        source_node = next((n for n in self.server_nodes
                            if n not in self.stale), None)
        if source_node is None:
            return False
        source = self._servers.get(source_node)
        target = self._servers.get(node)
        if source is not None and target is not None:
            for volume in source.registry.volumes():
                try:
                    target.registry.by_id(volume.volid)
                except KeyError:
                    continue
                resolve_replica(source, target, volume.volid)
            self.resolutions += 1
        self.stale.discard(node)
        return True
