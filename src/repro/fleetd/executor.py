"""Shard execution: each shard is a full deterministic sim, anywhere.

:func:`run_shard` runs one :class:`~repro.fleetd.plan.Shard` to
completion — in whatever process it happens to be called — and returns
a picklable :class:`ShardResult` carrying everything the merge and
verify layers need: the Figure-9 client reports, kernel totals, the
obs metrics rows, the canonical timeline (optionally), and a sha256
digest over the canonical timeline lines — the same hashing the golden
fixtures use, so a shard digest is directly comparable across
processes, worker counts, and checkouts.

:func:`run_sharded` fans a plan out over a
``concurrent.futures.ProcessPoolExecutor`` (``workers >= 1``) or runs
it sequentially in-process (``workers=0``, the verify reference).
Results are collected in shard order regardless of completion order,
so the merged output is identical however the pool schedules.
"""

import hashlib
from dataclasses import asdict, dataclass, field

from repro.analysis.divergence import _canonical
from repro.fleetd.plan import plan_shards, shard_config

#: Node identities that legitimately appear in a shard's timeline
#: without carrying the shard's name prefix: every shard has its own
#: server, and the administrator updates system volumes out-of-band.
SHARD_INFRASTRUCTURE = frozenset({"server", "admin-client", "admin"})


@dataclass
class ShardResult:
    """Everything one shard run sends back to the merge layer."""

    index: int
    seed: int
    desktops: int
    laptops: int
    dispatched: int          # kernel events dispatched
    sim_seconds: float       # simulated time covered
    digest: str = None       # sha256 over canonical timeline lines
    events: int = 0          # obs timeline length
    reports: list = field(default_factory=list)    # ClientReport dicts
    metrics_rows: list = field(default_factory=list)
    stream_stats: dict = None
    timeline: list = None    # event rows, only when requested

    @property
    def clients(self):
        return self.desktops + self.laptops


def timeline_rows(observatory):
    """The observatory's trace flattened to canonical export rows."""
    return [dict(event.to_row()) for event in observatory.trace.events]


def digest_rows(rows):
    """sha256 hexdigest over canonical timeline lines (golden-style)."""
    blob = "\n".join(_canonical(row) for row in rows).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _stream_stats(rows, shard):
    """Shard-local summary of the event stream for the merged sweep.

    Computed where the events live (inside the worker) so verify never
    needs to ship full timelines for the big scenarios: monotonicity
    of timestamps, the set of node identities seen, and per-kind
    counts travel back in a few hundred bytes.
    """
    monotone = all(rows[i]["time"] <= rows[i + 1]["time"]
                   for i in range(len(rows) - 1))
    nodes = set()
    kinds = {}
    for row in rows:
        kinds[row["kind"]] = kinds.get(row["kind"], 0) + 1
        for key in ("node", "client"):
            value = row.get(key)
            if value is not None:
                nodes.add(value)
    return {
        "monotone": monotone,
        "nodes": sorted(nodes),
        "kinds": kinds,
        "first_time": rows[0]["time"] if rows else None,
        "last_time": rows[-1]["time"] if rows else None,
        "prefix": shard.name_prefix,
    }


def run_shard(shard, with_timeline=False, instrument=True):
    """Run one shard to completion; returns a :class:`ShardResult`.

    ``instrument=True`` (the default) attaches a fresh Observatory so
    the result carries the timeline digest, metrics rows, and stream
    stats the equivalence machinery feeds on.  ``instrument=False``
    runs bare — no observatory, no digest — for honest wall-clock
    timing through ``repro perf`` (observation costs real time and the
    perf numbers must stay comparable with the unsharded scenarios).
    ``with_timeline`` additionally ships the event rows back, which
    only the small scenarios and tests want.
    """
    from repro.perf.runner import KernelTally
    from repro.spec.families import fleet_study

    observatory = None
    if instrument:
        from repro.obs import Observatory
        observatory = Observatory()
    study = fleet_study(shard.family)
    with KernelTally() as tally:
        desktops, laptops = study(shard_config(shard),
                                  observatory=observatory)
    result = ShardResult(
        index=shard.index, seed=shard.seed,
        desktops=shard.desktops, laptops=shard.laptops,
        dispatched=tally.events, sim_seconds=tally.sim_seconds,
        reports=[asdict(report) for report in desktops + laptops])
    if observatory is not None:
        rows = timeline_rows(observatory)
        result.digest = digest_rows(rows)
        result.events = len(rows)
        result.metrics_rows = observatory.metrics.rows()
        result.stream_stats = _stream_stats(rows, shard)
        if with_timeline:
            result.timeline = rows
    return result


def execute_plan(shards, workers=1, with_timeline=False, instrument=True):
    """Run every shard; returns :class:`ShardResult` in shard order.

    ``workers=0`` runs sequentially in this process (the reference
    execution verify compares against); ``workers >= 1`` uses a
    process pool of at most ``len(shards)`` workers.  Submission and
    collection both follow shard order, so the output is independent
    of pool scheduling.
    """
    if not workers:
        return [run_shard(shard, with_timeline, instrument)
                for shard in shards]
    from concurrent.futures import ProcessPoolExecutor
    pool_size = min(workers, len(shards))
    with ProcessPoolExecutor(max_workers=pool_size) as pool:
        futures = [pool.submit(run_shard, shard, with_timeline, instrument)
                   for shard in shards]
        return [future.result() for future in futures]


def run_sharded(scenario, workers=1, seed=0, days=None,
                with_timeline=False, instrument=True):
    """Plan, execute, and merge ``scenario``; returns a FleetReport."""
    from repro.fleetd.merge import merge_results
    shards = plan_shards(scenario, seed=seed, days=days)
    results = execute_plan(shards, workers=workers,
                           with_timeline=with_timeline,
                           instrument=instrument)
    return merge_results(scenario, seed, workers, shards, results)
