"""Sharded multi-process fleet simulation (``repro fleetd``).

The single-process kernel tops out near 200k events/sec (see
``DESIGN.md`` § Performance model); the next factor of scale must come
from running *several* simulations at once.  The paper's fleet study
(Figure 9) already draws the boundary for us: every client is an
independent Venus instance, and clients only interact through the
server volumes they share.  ``repro.fleetd`` exploits exactly that —

* :mod:`repro.fleetd.plan` partitions a fleet scenario by
  **volume-ownership** into shared-nothing shards: each shard is a
  subset of clients plus its own server hosting only the volumes those
  clients touch.  Shard seeds derive via
  ``derive_rng("fleetd", scenario, seed, shard)``.
* :mod:`repro.fleetd.executor` runs each shard as a complete
  deterministic simulation, either in-process or across a
  ``ProcessPoolExecutor`` worker pool.
* :mod:`repro.fleetd.merge` aggregates per-shard obs metrics,
  timelines, and Figure-9 client reports into one fleet report with a
  combined sha256 digest.
* :mod:`repro.fleetd.verify` proves a pooled run equivalent to the
  single-process schedule: per-shard timelines are byte-identical to
  the same clients simulated alone, and the merged stream passes an
  invariant sweep.

Because each shard is itself a full deterministic sim, the merged
result is a pure function of ``(scenario, seed, days)`` — worker count
only changes wall-clock, never a byte of output.
"""

from repro.fleetd.executor import ShardResult, run_shard, run_sharded
from repro.fleetd.merge import FleetReport, format_report, merge_results
from repro.fleetd.plan import (
    FLEET_SPECS,
    FleetSpec,
    Shard,
    plan_shards,
    shard_config,
    shard_seed,
)
from repro.fleetd.verify import VerifyReport, merged_stream_invariants, verify_sharded

__all__ = [
    "FLEET_SPECS",
    "FleetReport",
    "FleetSpec",
    "Shard",
    "ShardResult",
    "VerifyReport",
    "format_report",
    "merge_results",
    "merged_stream_invariants",
    "plan_shards",
    "run_shard",
    "run_sharded",
    "shard_config",
    "shard_seed",
    "verify_sharded",
]
