"""Shard planning: partition a fleet scenario into shared-nothing shards.

A fleet scenario interacts only along volume-ownership edges: a client
touches its private volume, the shared project volumes of its
community, the system volumes its administrator updates, and the extra
volumes it roams into.  Partitioning the fleet so that every such edge
stays *inside* one shard makes the shards shared-nothing: shard *i* is
a subset of clients plus a server hosting only the volumes they touch,
and nothing in shard *i* can observe — let alone perturb — shard *j*.

Two properties make the partition sound:

* **The plan never depends on worker count.**  A scenario always
  splits into the same shards with the same seeds, so running the plan
  on 1, 2, or 8 workers (or in-process) yields byte-identical merged
  output; workers only change wall-clock.
* **Seeds derive through the sanctioned path.**  Shard *k* of scenario
  *s* at fleet seed *n* draws its master seed from
  ``derive_rng("fleetd", s, n, k)``, so shard universes can never
  collide with each other or with any other subsystem's streams.

Client names get a per-shard prefix (``s03-bach``), which flows into
private volume paths (``/coda/usr/s03-bach``) and stream names, so an
object's identity names the shard that owns it — the merged-stream
invariant sweep (:mod:`repro.fleetd.verify`) checks containment from
exactly this.
"""

from dataclasses import dataclass

from repro.sim.rand import derive_rng


@dataclass(frozen=True)
class FleetSpec:
    """One sharded fleet scenario: total population and shard count."""

    desktops: int
    laptops: int
    days: float
    shards: int
    family: str = "figure9"

    @property
    def clients(self):
        return self.desktops + self.laptops


def _fleet_specs():
    """The sharded scenario catalogue, derived from the spec catalogue.

    Every fleet-kind spec with a shard count appears here.  fleet-8/32/
    64 mirror the perf macro-scenario populations; fleet-256 and
    fleet-1024 exist only sharded (their single-process runs would be
    tens of minutes); commuter is the diurnal family behind the same
    interface.  Days shrink as populations grow so every scenario stays
    in the 3–7M-event band the perf harness times.
    """
    from repro.spec.catalog import shipped
    return {spec.name: FleetSpec(desktops=spec.clients.desktops,
                                 laptops=spec.clients.laptops,
                                 days=spec.duration, shards=spec.shards,
                                 family=spec.family)
            for spec in shipped()
            if spec.kind == "fleet" and spec.shards is not None}


FLEET_SPECS = _fleet_specs()


@dataclass(frozen=True)
class Shard:
    """One shared-nothing slice of a fleet scenario (picklable)."""

    scenario: str
    index: int
    shards: int
    desktops: int
    laptops: int
    days: float
    seed: int           # derived master seed for this shard's streams
    name_prefix: str    # owns every client/volume identity it stamps
    family: str = "figure9"

    @property
    def clients(self):
        return self.desktops + self.laptops


def shard_seed(scenario, seed, index):
    """Master seed for shard ``index`` of ``(scenario, seed)``.

    Routed through :func:`repro.sim.rand.derive_rng` with the seed
    string ``"fleetd::<scenario>::<seed>::<index>"``.
    """
    return derive_rng("fleetd", scenario, seed, index).getrandbits(32)


def _split(total, shards):
    """Spread ``total`` clients over ``shards`` as evenly as possible."""
    base, extra = divmod(total, shards)
    return [base + (1 if index < extra else 0) for index in range(shards)]


def plan_shards(scenario, seed=0, days=None):
    """The shard plan for ``scenario``: a list of :class:`Shard`.

    ``days`` overrides the scenario's simulated duration (used by fast
    CI modes and tests); everything else — shard count, population
    split, seeds — is fixed per scenario so the plan is independent of
    how it will be executed.  Unknown names raise ValueError listing
    the catalogue, like the other scenario runners.
    """
    try:
        spec = FLEET_SPECS[scenario]
    except KeyError:
        raise ValueError("unknown fleetd scenario %r (have %s)"
                         % (scenario,
                            ", ".join(sorted(FLEET_SPECS)))) from None
    desktops = _split(spec.desktops, spec.shards)
    laptops = _split(spec.laptops, spec.shards)
    return [Shard(scenario=scenario, index=index, shards=spec.shards,
                  desktops=desktops[index], laptops=laptops[index],
                  days=spec.days if days is None else days,
                  seed=shard_seed(scenario, seed, index),
                  name_prefix="s%02d-" % index,
                  family=spec.family)
            for index in range(spec.shards)]


def shard_config(shard):
    """The family config realizing ``shard``, via the spec compiler.

    Every shard keeps the classic per-community volume population
    (shared/system/extra counts are the family config's defaults): a
    shard models one project group on its own volume set, which is the
    paper's own unit of interaction.  This is the single construction
    path — the executor, the golden fixtures, and the verify reference
    all build shard simulations through here, so "the same clients
    simulated alone" is true by construction, not by convention.
    Compilation goes through :func:`repro.spec.compile.fleet_config`
    with the shard's population overriding the spec's, so a figure9
    shard still produces exactly the classic
    :class:`repro.bench.fleet.FleetConfig`.
    """
    from dataclasses import replace
    from repro.spec.catalog import get
    from repro.spec.compile import fleet_config

    config = fleet_config(get(shard.scenario), master=shard.seed,
                          days=shard.days, name_prefix=shard.name_prefix)
    return replace(config, desktops=shard.desktops, laptops=shard.laptops)
