"""Pinnable fleetd scenarios: golden shard runs for the digest fixtures.

The golden machinery (:mod:`repro.analysis.golden`) pins obs timelines
of ``mod:<module>:<function>`` specs across checkouts.  These two
functions expose shard 0 and shard 1 of the ``fleet-8`` plan — built
through the identical :func:`~repro.fleetd.plan.shard_config` path the
executor uses — at a fixed, CI-friendly duration.  Pinning them means
no change can silently alter what a worker process simulates: the
per-shard schedule itself is a committed fixture, not just equal to
whatever the in-process run happens to produce today.

``GOLDEN_DAYS`` is deliberately independent of ``REPRO_FAST`` and of
the scenario's catalogue duration: fixtures must hash the same
simulation everywhere.
"""

from repro.fleetd.plan import plan_shards, shard_config

GOLDEN_SCENARIO = "fleet-8"
GOLDEN_DAYS = 0.25


def run_golden_shard(index, observatory=None):
    """Run one pinned shard of the golden plan, instrumented."""
    from repro.bench.fleet import run_fleet_study
    shard = plan_shards(GOLDEN_SCENARIO, seed=0, days=GOLDEN_DAYS)[index]
    desktops, laptops = run_fleet_study(shard_config(shard),
                                        observatory=observatory)
    reports = desktops + laptops
    return {
        "shard": shard.index,
        "clients": len(reports),
        "validation_attempts": sum(r.attempts for r in reports),
    }


def golden_shard0(observatory=None):
    """``mod:repro.fleetd.scenarios:golden_shard0`` for repro golden."""
    return run_golden_shard(0, observatory=observatory)


def golden_shard1(observatory=None):
    """``mod:repro.fleetd.scenarios:golden_shard1`` for repro golden."""
    return run_golden_shard(1, observatory=observatory)
