"""Equivalence proof for sharded runs: pool vs the single-process schedule.

Correctness of a parallel runner *is* the feature, so verification is
structural, not statistical:

1. **Shard-by-shard byte identity.**  Every shard of the pooled run is
   re-simulated alone, in this process, through the identical
   construction path (:func:`repro.fleetd.plan.shard_config` →
   :func:`repro.fleetd.executor.run_shard`), and the two timeline
   digests — golden-style sha256 over canonical event lines — must
   match, along with event counts, kernel totals, and the Figure-9
   client reports.
2. **Merged equality.**  The merged metrics rows and fleet digest must
   be byte-equal between the pooled and reference runs (merging is a
   pure fold, so any difference localizes to a shard above).
3. **Merged-stream invariants.**  The combined stream must be
   well-formed: complete shard cover, per-shard monotone timestamps,
   taxonomy-only event kinds, and volume-ownership containment — no
   client identity ever appears outside the shard that owns its
   prefix.

Any failure is reported with the shard index and field that diverged,
the parallel analogue of the divergence detector naming the first
conflicting event.
"""

from dataclasses import dataclass, field

from repro.fleetd.executor import SHARD_INFRASTRUCTURE, execute_plan
from repro.fleetd.merge import merge_results
from repro.fleetd.plan import plan_shards
from repro.obs.events import EVENT_KINDS


@dataclass
class Mismatch:
    """One field where the pooled run disagrees with the reference."""

    shard: int          # -1 for fleet-level fields
    name: str
    sharded: object
    reference: object

    def format(self):
        where = "fleet" if self.shard < 0 else "shard %02d" % self.shard
        return "%s %s: sharded=%r != reference=%r" % (
            where, self.name, _clip(self.sharded), _clip(self.reference))


def _clip(value, limit=64):
    text = repr(value)
    return text if len(text) <= limit else text[:limit] + "..."


@dataclass
class VerifyReport:
    """Outcome of one equivalence check."""

    scenario: str
    workers: int
    shards: int
    mismatches: list = field(default_factory=list)
    violations: list = field(default_factory=list)   # merged-stream sweep

    @property
    def ok(self):
        return not self.mismatches and not self.violations

    def format(self):
        if self.ok:
            return ("fleetd verify %s: %d shard(s) byte-identical to the "
                    "single-process schedule (%d worker(s)); merged "
                    "stream passes %d invariant(s)"
                    % (self.scenario, self.shards, self.workers,
                       len(MERGED_INVARIANTS)))
        lines = ["fleetd verify %s: NOT equivalent (%d mismatch(es), "
                 "%d stream violation(s))"
                 % (self.scenario, len(self.mismatches),
                    len(self.violations))]
        lines += ["  " + mismatch.format() for mismatch in self.mismatches]
        lines += ["  " + violation for violation in self.violations]
        return "\n".join(lines)


#: Names of the merged-stream invariants, in sweep order (documentation
#: and reporting; the sweep itself is :func:`merged_stream_invariants`).
MERGED_INVARIANTS = (
    "shard-cover",        # indices are exactly 0..S-1, in order
    "monotone-time",      # per-shard timestamps never go backwards
    "taxonomy",           # every event kind is in the obs taxonomy
    "ownership",          # node identities stay inside their shard
)


def merged_stream_invariants(report):
    """Sweep the merged stream; returns a list of violation strings.

    Works from the per-shard stream stats (computed where the events
    lived), so it scales to fleets whose full timelines never leave
    their worker processes.
    """
    violations = []
    indexes = [shard["index"] for shard in report.shards]
    if indexes != list(range(len(indexes))):
        violations.append("shard-cover: got indices %r" % (indexes,))
    owners = {}
    for shard in report.shards:
        stats = shard.get("stream_stats")
        if stats is None:
            violations.append("shard %02d: no stream stats (ran "
                              "uninstrumented?)" % shard["index"])
            continue
        if not stats["monotone"]:
            violations.append("monotone-time: shard %02d timeline goes "
                              "backwards" % shard["index"])
        unknown = sorted(set(stats["kinds"]) - EVENT_KINDS)
        if unknown:
            violations.append("taxonomy: shard %02d emitted unknown "
                              "kind(s) %s" % (shard["index"],
                                              ", ".join(unknown)))
        prefix = stats["prefix"]
        for node in stats["nodes"]:
            if node in SHARD_INFRASTRUCTURE:
                continue
            if not node.startswith(prefix):
                violations.append(
                    "ownership: shard %02d saw node %r outside its "
                    "prefix %r" % (shard["index"], node, prefix))
            previous = owners.setdefault(node, shard["index"])
            if previous != shard["index"]:
                violations.append(
                    "ownership: node %r appears in shards %02d and %02d"
                    % (node, previous, shard["index"]))
    return violations


def compare_reports(sharded, reference):
    """Field-by-field comparison; returns a list of :class:`Mismatch`."""
    mismatches = []
    per_shard_fields = ("digest", "events", "dispatched", "sim_seconds",
                        "clients", "seed")
    for ours, theirs in zip(sharded.shards, reference.shards):
        for name in per_shard_fields:
            if ours[name] != theirs[name]:
                mismatches.append(Mismatch(ours["index"], name,
                                           ours[name], theirs[name]))
    if len(sharded.shards) != len(reference.shards):
        mismatches.append(Mismatch(-1, "shard count",
                                   len(sharded.shards),
                                   len(reference.shards)))
    for name in ("fleet_digest", "clients", "dispatched",
                 "validation_attempts"):
        if getattr(sharded, name) != getattr(reference, name):
            mismatches.append(Mismatch(-1, name, getattr(sharded, name),
                                       getattr(reference, name)))
    if sharded.reports != reference.reports:
        mismatches.append(Mismatch(-1, "client reports",
                                   "pooled run", "reference run"))
    if sharded.metrics_rows != reference.metrics_rows:
        mismatches.append(Mismatch(-1, "metrics rows",
                                   "pooled run", "reference run"))
    return mismatches


def verify_sharded(scenario, workers=2, seed=0, days=None, report=None):
    """Prove a pooled run equivalent to the single-process schedule.

    ``report`` reuses an existing instrumented pooled run (the CLI
    passes the one it just executed); otherwise one is run here with
    ``workers`` processes.  The reference always runs in-process.
    Returns a :class:`VerifyReport`.
    """
    if report is None:
        from repro.fleetd.executor import run_sharded
        report = run_sharded(scenario, workers=workers, seed=seed,
                             days=days)
    shards = plan_shards(scenario, seed=seed,
                         days=days if days is not None else report.days)
    reference = merge_results(scenario, seed, 0, shards,
                              execute_plan(shards, workers=0))
    mismatches = compare_reports(report, reference)
    violations = merged_stream_invariants(report)
    return VerifyReport(scenario=scenario, workers=report.workers,
                        shards=len(report.shards),
                        mismatches=mismatches, violations=violations)
