"""Merging per-shard results into one fleet report.

A merged fleet report is a pure function of the shard results in shard
order: metrics rows are merged losslessly with a ``shard`` label
(:func:`repro.obs.metrics.merge_rows`), timelines are concatenated in
shard order with a ``shard`` field stamped into each canonical row,
client reports are pooled, and the fleet digest chains the per-shard
sha256 digests.  Nothing here depends on how — or in how many
processes — the shards actually ran, which is what makes the
cross-worker-count equivalence tests meaningful.
"""

import hashlib
import json
from dataclasses import dataclass, field

from repro.analysis.divergence import _canonical
from repro.obs.metrics import merge_rows, sum_counters


@dataclass
class FleetReport:
    """The merged outcome of one sharded fleet run."""

    scenario: str
    seed: int
    workers: int             # 0 = ran in-process
    days: float
    shards: list = field(default_factory=list)   # per-shard summaries
    fleet_digest: str = None
    clients: int = 0
    dispatched: int = 0
    sim_seconds: float = 0.0
    validation_attempts: int = 0
    mean_success_pct: float = 0.0
    mean_missing_pct: float = 0.0
    reports: list = field(default_factory=list)  # pooled ClientReports
    metrics_rows: list = field(default_factory=list)
    timeline: list = None    # merged canonical lines, when carried

    def to_dict(self):
        """JSON-ready form (``repro fleetd --json``)."""
        return {
            "schema": "repro.fleetd/1",
            "scenario": self.scenario,
            "seed": self.seed,
            "workers": self.workers,
            "days": self.days,
            "fleet_digest": self.fleet_digest,
            "clients": self.clients,
            "dispatched": self.dispatched,
            "sim_seconds": self.sim_seconds,
            "validation_attempts": self.validation_attempts,
            "mean_success_pct": self.mean_success_pct,
            "mean_missing_pct": self.mean_missing_pct,
            "shards": self.shards,
            "reports": self.reports,
            "metrics_rows": self.metrics_rows,
        }


def fleet_digest(results):
    """One sha256 chaining the per-shard digests, in shard order.

    None when any shard ran uninstrumented — a partial digest would
    pretend to cover the fleet.
    """
    if any(result.digest is None for result in results):
        return None
    blob = "\n".join("%d %s" % (result.index, result.digest)
                     for result in results).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def merge_timelines(results, label="shard"):
    """Canonical merged timeline lines, shard by shard.

    Each event row is re-canonicalized with the owning shard stamped
    in, so the merged stream stays self-describing.  Returns None
    unless every shard carried its timeline.
    """
    if any(result.timeline is None for result in results):
        return None
    lines = []
    for result in results:
        for row in result.timeline:
            stamped = dict(row)
            stamped[label] = result.index
            lines.append(_canonical(stamped))
    return lines


def merge_results(scenario, seed, workers, shards, results):
    """Fold ordered :class:`ShardResult` objects into a FleetReport."""
    reports = []
    for result in results:
        for client in result.reports:
            client = dict(client)
            client["shard"] = result.index
            reports.append(client)
    population = len(reports) or 1
    metrics = merge_rows((result.index, result.metrics_rows)
                         for result in results)
    return FleetReport(
        scenario=scenario,
        seed=seed,
        workers=workers,
        days=shards[0].days if shards else 0.0,
        shards=[{
            "index": result.index,
            "seed": result.seed,
            "desktops": result.desktops,
            "laptops": result.laptops,
            "clients": result.clients,
            "dispatched": result.dispatched,
            "sim_seconds": result.sim_seconds,
            "digest": result.digest,
            "events": result.events,
            "stream_stats": result.stream_stats,
        } for result in results],
        fleet_digest=fleet_digest(results),
        clients=sum(result.clients for result in results),
        dispatched=sum(result.dispatched for result in results),
        sim_seconds=sum(result.sim_seconds for result in results),
        validation_attempts=sum(client["attempts"] for client in reports),
        mean_success_pct=(sum(client["success_pct"]
                              for client in reports) / population),
        mean_missing_pct=(sum(client["missing_pct"]
                              for client in reports) / population),
        reports=reports,
        metrics_rows=metrics,
        timeline=merge_timelines(results))


def format_report(report):
    """Human-readable fleet report for the CLI."""
    lines = [
        "fleetd %s (seed %d, %s)"
        % (report.scenario, report.seed,
           "%d worker(s)" % report.workers if report.workers
           else "in-process"),
        "  clients        %10d   in %d shard(s), %.3g day(s) each"
        % (report.clients, len(report.shards), report.days),
        "  dispatched     %10d   kernel events" % report.dispatched,
        "  sim time       %10.1f s" % report.sim_seconds,
        "  validations    %10d   (%.1f%% success, %.1f%% missing stamp)"
        % (report.validation_attempts, report.mean_success_pct,
           report.mean_missing_pct),
    ]
    if report.fleet_digest:
        lines.append("  fleet digest   %s" % report.fleet_digest)
    for shard in report.shards:
        lines.append(
            "    shard %02d: %3d client(s) %9d events  %s"
            % (shard["index"], shard["clients"], shard["dispatched"],
               (shard["digest"] or "")[:16]))
    totals = sum_counters(report.metrics_rows)
    for name in ("sim.events_dispatched", "link.bytes_sent",
                 "cache.hits", "cache.misses", "validation.rpcs"):
        if name in totals:
            lines.append("  %-28s %12d" % (name, totals[name]))
    return "\n".join(lines)


def write_report(report, path):
    """Write the merged report as JSON; returns the path written."""
    with open(path, "w") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
