"""The shared file-system model: FIDs, vnodes, volumes, and contents.

Both the Coda servers and Venus operate on these structures.  Files
are grouped into *volumes*, each a partial subtree of the name space;
every object and every volume carries a version stamp — the two
granularities of cache coherence at the heart of the paper's rapid
cache validation mechanism (section 4.2).
"""

from repro.fs.content import ByteContent, Content, SyntheticContent
from repro.fs.fid import Fid
from repro.fs.objects import ObjectType, Vnode, VnodeStatus
from repro.fs.volume import Volume
from repro.fs.namespace import VolumeRegistry, split_path

__all__ = [
    "ByteContent",
    "Content",
    "Fid",
    "ObjectType",
    "SyntheticContent",
    "Vnode",
    "VnodeStatus",
    "Volume",
    "VolumeRegistry",
    "split_path",
]
