"""Vnodes: files, directories, and symbolic links.

Each object carries a version number incremented on every update; the
server also bumps the containing volume's stamp (section 4.2.1).  A
:class:`VnodeStatus` is the ~100-byte attribute block that servers
return from GetAttr and that Venus uses for miss-cost estimation.
"""

import enum
from dataclasses import dataclass

from repro.fs.content import Content
from repro.fs.fid import Fid


class ObjectType(enum.Enum):
    FILE = "file"
    DIRECTORY = "directory"
    SYMLINK = "symlink"


#: Modelled metadata bytes a directory consumes per entry (for CML and
#: transfer accounting of directory operations).
DIR_ENTRY_BYTES = 32


@dataclass
class VnodeStatus:
    """The status (attribute) block for one object."""

    fid: Fid
    otype: ObjectType
    length: int
    version: int
    mtime: float

    wire_size = 100  # paper section 4.4.1


class Vnode:
    """One file-system object as stored by a server or cached by Venus."""

    def __init__(self, fid, otype, mtime=0.0, content=None, target=None):
        self.fid = fid
        self.otype = otype
        self.version = 1
        self.mtime = mtime
        if otype is ObjectType.FILE:
            self.content = content if content is not None else Content.empty()
        else:
            self.content = None
        self.children = {} if otype is ObjectType.DIRECTORY else None
        self.target = target if otype is ObjectType.SYMLINK else None
        self.link_count = 1

    @property
    def length(self):
        """Logical size in bytes (files: contents; dirs: entry table)."""
        if self.otype is ObjectType.FILE:
            return self.content.size
        if self.otype is ObjectType.DIRECTORY:
            return len(self.children) * DIR_ENTRY_BYTES
        return len(self.target or "")

    def status(self):
        return VnodeStatus(fid=self.fid, otype=self.otype,
                           length=self.length, version=self.version,
                           mtime=self.mtime)

    def is_dir(self):
        return self.otype is ObjectType.DIRECTORY

    def is_file(self):
        return self.otype is ObjectType.FILE

    def lookup(self, name):
        """Child fid by name, or None (directories only)."""
        if not self.is_dir():
            raise NotADirectoryError(str(self.fid))
        return self.children.get(name)

    def clone(self):
        """A copy sharing content (contents are immutable values)."""
        twin = Vnode(self.fid, self.otype, mtime=self.mtime,
                     content=self.content, target=self.target)
        twin.version = self.version
        twin.link_count = self.link_count
        if self.children is not None:
            twin.children = dict(self.children)
        return twin

    def __repr__(self):
        return "<Vnode %s %s v%d %dB>" % (
            self.fid, self.otype.value, self.version, self.length)
