"""Volumes: partial subtrees of the name space with version stamps.

"A server now maintains version stamps for each of its volumes, in
addition to stamps on individual objects.  When an object is updated,
the server increments the version stamp of the object and that of its
containing volume." (section 4.2.1)
"""

from itertools import count

from repro.fs.fid import Fid
from repro.fs.objects import ObjectType, Vnode


class Volume:
    """A collection of vnodes rooted at one directory."""

    def __init__(self, volid, name):
        self.volid = volid
        self.name = name
        self.stamp = 1
        self.vnodes = {}
        self._vnode_counter = count(1)
        self._uniq_counter = count(1)
        root_fid = self.alloc_fid()
        self.root = Vnode(root_fid, ObjectType.DIRECTORY)
        self.vnodes[root_fid] = self.root

    @property
    def root_fid(self):
        return self.root.fid

    def alloc_fid(self):
        return Fid(self.volid, next(self._vnode_counter),
                   next(self._uniq_counter))

    def get(self, fid):
        """Vnode by fid, or None if absent (deleted or never existed)."""
        return self.vnodes.get(fid)

    def require(self, fid):
        vnode = self.vnodes.get(fid)
        if vnode is None:
            raise KeyError("no object %s in volume %s" % (fid, self.name))
        return vnode

    def add(self, vnode):
        if vnode.fid.volume != self.volid:
            raise ValueError("fid %s not of volume %d"
                             % (vnode.fid, self.volid))
        self.vnodes[vnode.fid] = vnode

    def remove(self, fid):
        self.vnodes.pop(fid, None)

    def bump(self, vnode, mtime=None):
        """Record an update: bump the object and volume stamps."""
        vnode.version += 1
        if mtime is not None:
            vnode.mtime = mtime
        self.stamp += 1

    def object_count(self):
        return len(self.vnodes)

    def __repr__(self):
        return "<Volume %d %r stamp=%d objects=%d>" % (
            self.volid, self.name, self.stamp, len(self.vnodes))
