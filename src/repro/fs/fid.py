"""File identifiers.

A Coda FID names an object independently of its path:
``(volume, vnode, uniquifier)``.  The uniquifier distinguishes
successive objects that reuse a vnode slot, so a deleted-and-recreated
file is never confused with its predecessor.
"""

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Fid:
    """A globally unique, location-transparent object identifier."""

    volume: int
    vnode: int
    uniq: int

    def __str__(self):
        return "%x.%x.%x" % (self.volume, self.vnode, self.uniq)
