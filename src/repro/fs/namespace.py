"""The exported name space: volumes mounted under ``/coda``.

A :class:`VolumeRegistry` maps mount prefixes like ``/coda/usr/hqb``
to volumes, mirroring Coda's location-transparent tree in which each
volume "forms a partial subtree of the name space and typically
contains the files of one user or project."
"""


def split_path(path):
    """Normalize ``path`` into a component list ('/a//b/' -> ['a', 'b'])."""
    return [part for part in path.split("/") if part]


def join_path(components):
    return "/" + "/".join(components)


class VolumeRegistry:
    """Mount table: path prefix -> volume."""

    def __init__(self):
        self._mounts = {}

    def mount(self, prefix, volume):
        key = tuple(split_path(prefix))
        if key in self._mounts:
            raise ValueError("mount point %r already in use" % (prefix,))
        self._mounts[key] = volume

    def volumes(self):
        return list(self._mounts.values())

    def mount_of(self, volume):
        """The mount prefix components for ``volume``."""
        for key, mounted in self._mounts.items():
            if mounted is volume:
                return key
        raise KeyError(volume.name)

    def resolve_prefix(self, path):
        """Split ``path`` into (volume, remaining components).

        The longest matching mount prefix wins.  Raises FileNotFoundError
        when no mount covers the path.
        """
        parts = tuple(split_path(path))
        for cut in range(len(parts), -1, -1):
            volume = self._mounts.get(parts[:cut])
            if volume is not None:
                return volume, list(parts[cut:])
        raise FileNotFoundError("no volume mounted for %r" % (path,))

    def by_id(self, volid):
        for volume in self._mounts.values():
            if volume.volid == volid:
                return volume
        raise KeyError(volid)
