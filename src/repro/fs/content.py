"""File contents, real or synthetic.

Benchmarks move megabytes of simulated file data whose bytes are
irrelevant — only sizes and identities matter for transfer times and
conflict detection.  :class:`SyntheticContent` carries a size and a
fingerprint without allocating; :class:`ByteContent` holds real bytes
for code that uses the library as an actual (in-memory) file store.
"""


class Content:
    """Abstract file contents: a size plus an identity fingerprint."""

    size = 0

    @property
    def fingerprint(self):
        raise NotImplementedError

    @staticmethod
    def of(value):
        """Coerce bytes/str/int/Content into a Content."""
        if isinstance(value, Content):
            return value
        if isinstance(value, bytes):
            return ByteContent(value)
        if isinstance(value, str):
            return ByteContent(value.encode("utf-8"))
        if isinstance(value, int):
            return SyntheticContent(value)
        raise TypeError("cannot make Content from %r" % type(value))

    @staticmethod
    def empty():
        return ByteContent(b"")

    def __eq__(self, other):
        return (isinstance(other, Content)
                and self.size == other.size
                and self.fingerprint == other.fingerprint)

    def __hash__(self):
        return hash((self.size, self.fingerprint))


class ByteContent(Content):
    """Contents backed by real bytes."""

    def __init__(self, data):
        if not isinstance(data, bytes):
            raise TypeError("ByteContent requires bytes")
        self.data = data

    @property
    def size(self):
        return len(self.data)

    @property
    def fingerprint(self):
        return hash(self.data)

    def __repr__(self):
        return "<ByteContent %dB>" % self.size


class SyntheticContent(Content):
    """Contents identified by ``(size, tag)`` without materialized bytes.

    The ``tag`` plays the role of a checksum: two synthetic contents
    with the same size and tag are "the same bytes".
    """

    _counter = 0

    def __init__(self, size, tag=None):
        if size < 0:
            raise ValueError("negative size")
        self.size = size
        if tag is None:
            SyntheticContent._counter += 1
            tag = ("auto", SyntheticContent._counter)
        self.tag = tag

    @property
    def fingerprint(self):
        return self.tag

    def __repr__(self):
        return "<SyntheticContent %dB tag=%r>" % (self.size, self.tag)
