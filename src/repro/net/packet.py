"""Datagrams carried by the simulated network."""

from dataclasses import dataclass, field
from itertools import count

_datagram_ids = count(1)


@dataclass
class Datagram:
    """An unreliable datagram (the UDP analogue).

    ``size`` is the on-the-wire size in bytes including all headers;
    it, not the payload object, determines transmission time.  The
    ``payload`` is any Python object — transports put their own packet
    structures here.

    ``pooled`` marks wrappers born from the simulator's object pool
    (:mod:`repro.sim.pool`); only those are ever returned to a free
    list, so directly constructed datagrams (tests, ad-hoc tools) are
    never recycled out from under their owner.  ``gen`` counts
    recycles — a holder that must survive a recycle boundary keeps
    ``(datagram, datagram.gen)`` and compares.  Neither field takes
    part in equality: a pooled datagram on its Nth life compares equal
    to a fresh one with the same addressing and payload.
    """

    src: str
    src_port: int
    dst: str
    dst_port: int
    payload: object
    size: int
    ident: int = field(default_factory=lambda: next(_datagram_ids))
    gen: int = field(default=0, compare=False)
    pooled: bool = field(default=False, compare=False)

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError("datagram size must be positive: %r" % self.size)

    def __repr__(self):
        return "<Datagram #%d %s:%d->%s:%d %dB>" % (
            self.ident, self.src, self.src_port,
            self.dst, self.dst_port, self.size)
