"""Datagrams carried by the simulated network."""

from dataclasses import dataclass, field
from itertools import count

_datagram_ids = count(1)


@dataclass
class Datagram:
    """An unreliable datagram (the UDP analogue).

    ``size`` is the on-the-wire size in bytes including all headers;
    it, not the payload object, determines transmission time.  The
    ``payload`` is any Python object — transports put their own packet
    structures here.
    """

    src: str
    src_port: int
    dst: str
    dst_port: int
    payload: object
    size: int
    ident: int = field(default_factory=lambda: next(_datagram_ids))

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError("datagram size must be positive: %r" % self.size)

    def __repr__(self):
        return "<Datagram #%d %s:%d->%s:%d %dB>" % (
            self.ident, self.src, self.src_port,
            self.dst, self.dst_port, self.size)
