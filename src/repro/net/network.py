"""Datagram routing between nodes and UDP-style sockets."""

from repro.net.link import Link
from repro.net.packet import Datagram
from repro.sim.resources import Store


class Socket:
    """An unreliable datagram socket bound to ``(node, port)``."""

    def __init__(self, network, node, port):
        self.network = network
        self.node = node
        self.port = port
        self._inbox = Store(network.sim)
        self.closed = False

    def send(self, dst, dst_port, payload, size):
        """Send a datagram; fire-and-forget, may be lost or dropped."""
        if self.closed:
            raise RuntimeError("socket is closed")
        pool = self.network.sim._pool
        if pool is not None:
            datagram = pool.datagram(self.node, self.port,
                                     dst, dst_port, payload, size)
        else:
            datagram = Datagram(
                src=self.node, src_port=self.port,
                dst=dst, dst_port=dst_port,
                payload=payload, size=size)
        self.network.transmit(datagram)

    def recv(self):
        """Event that fires with the next datagram delivered here."""
        return self._inbox.get()

    def release(self, datagram):
        """Return a received datagram's wrapper to the object pool.

        Receive loops call this once they have extracted ``src`` and
        ``payload`` and will not touch the wrapper again.  Optional —
        an unreleased wrapper just falls to the garbage collector —
        and safe for directly constructed datagrams, which are never
        pooled.
        """
        pool = self.network.sim._pool
        if pool is not None:
            pool.recycle_datagram(datagram)

    def pending(self):
        """Number of datagrams queued for recv."""
        return len(self._inbox)

    def close(self):
        self.closed = True
        self.network._unbind(self)

    def _deliver(self, datagram):
        if self.closed:
            pool = self.network.sim._pool
            if pool is not None:
                pool.recycle_datagram(datagram)
            return
        self._inbox.put(datagram)


class Network:
    """A set of nodes joined by point-to-point links.

    Topologies in this reproduction are client–server stars, so routing
    is single-hop: a datagram travels over the direct link between its
    source and destination node.  Datagrams to unreachable nodes are
    dropped (like IP with no route).
    """

    def __init__(self, sim, rng=None):
        self.sim = sim
        self._rng = rng
        self._links = {}
        self._sockets = {}

    def add_link(self, node_a, node_b, profile=None, **overrides):
        """Create a link, optionally from a :class:`NetworkProfile`.

        With no network-level ``rng`` (the default), each link derives
        independent per-direction loss generators from the simulator's
        named streams; passing one shares a single loss sequence across
        every link and both directions — callers like the transport
        benchmark use that to vary whole trials by one seed.
        """
        parameters = {}
        if profile is not None:
            parameters.update(profile.link_kwargs())
        parameters.update(overrides)
        if self._rng is not None:
            parameters.setdefault("rng", self._rng)
        link = Link(self.sim, node_a, node_b,
                    deliver=self._deliver, **parameters)
        self._links[frozenset((node_a, node_b))] = link
        return link

    def link_between(self, node_a, node_b):
        """The link joining two nodes, or None."""
        return self._links.get(frozenset((node_a, node_b)))

    def socket(self, node, port):
        """Bind a datagram socket at ``(node, port)``."""
        key = (node, port)
        if key in self._sockets:
            raise ValueError("port %d already bound on %s" % (port, node))
        sock = Socket(self, node, port)
        self._sockets[key] = sock
        return sock

    def transmit(self, datagram):
        link = self.link_between(datagram.src, datagram.dst)
        if link is None:
            # No route: silently dropped, like IP.
            pool = self.sim._pool
            if pool is not None:
                pool.recycle_datagram(datagram)
            return
        link.send(datagram)

    def _deliver(self, datagram):
        sock = self._sockets.get((datagram.dst, datagram.dst_port))
        if sock is not None:
            sock._deliver(datagram)

    def _unbind(self, sock):
        self._sockets.pop((sock.node, sock.port), None)
