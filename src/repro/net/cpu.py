"""A host's CPU as a shared, serializing resource.

Packet processing and Venus's own work execute on the same machine.
Sharing one FIFO CPU between the transport's pacing loops and the
cache manager's local operations reproduces a subtle effect the paper
measures: trickle reintegration is *almost* free, but the client
spends real cycles pushing packets, so foreground activity runs
slightly slower while a transfer is in progress — the few-percent
drift visible across Figure 12's columns.
"""

from repro.sim.resources import Lock


class HostCpu:
    """FIFO-serialized CPU time for one host."""

    def __init__(self, sim, host):
        self.sim = sim
        self.host = host
        # Pooled: both the acquire event and the slice timeout below
        # run once per packet fleet-wide and are always yielded
        # inline, the exact transient shape the object pool recycles.
        self._lock = Lock(sim, pooled=True)
        self.busy_seconds = 0.0

    def use(self, seconds):
        """Generator: hold the CPU for ``seconds``."""
        if seconds <= 0:
            return
        yield self._lock.acquire()
        try:
            self.busy_seconds += seconds
            yield self.sim.sleep(seconds)
        finally:
            self._lock.release()
