"""Endpoint CPU cost models.

On 1995 hardware the wire is not the only bottleneck: a DECpc 425SL
laptop spends milliseconds of CPU per packet in the protocol stack,
which is why the paper's Figure 1 measures only ~2 Mb/s of goodput on a
10 Mb/s Ethernet.  Each simulated host charges a fixed cost plus a
per-byte cost for every packet it sends or receives, and all packet
processing on a host is serialized (one CPU).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Host:
    """CPU cost parameters for one machine.

    Receive paths cost ``recv_multiplier`` times the send path — the
    extra copy and wakeup on the 1995 Mach receive path is what makes
    Figure 1's receive throughputs lower than its send throughputs.
    """

    name: str
    cpu_per_packet: float = 0.0005   # seconds of fixed protocol overhead
    cpu_per_byte: float = 5e-7       # seconds per payload byte (copies)
    recv_multiplier: float = 1.0

    def send_cost(self, size_bytes):
        """Seconds of CPU to emit one packet of ``size_bytes``."""
        return self.cpu_per_packet + size_bytes * self.cpu_per_byte

    def recv_cost(self, size_bytes):
        """Seconds of CPU to absorb one packet of ``size_bytes``."""
        return self.send_cost(size_bytes) * self.recv_multiplier


# Calibrated so that SFTP disk-to-disk transfer of 1 MB between these
# two machines approximates the paper's Figure 1 throughputs: the
# laptop is the bottleneck on fast networks, and its receive path is
# slower than its send path.
LAPTOP_1995 = Host(name="DECpc-425SL", cpu_per_packet=0.0004,
                   cpu_per_byte=2.9e-6, recv_multiplier=1.35)
SERVER_1995 = Host(name="DECstation-5000/200", cpu_per_packet=0.0002,
                   cpu_per_byte=1.2e-6, recv_multiplier=1.2)

#: An effectively free host, for tests that want wire-limited behaviour.
IDEAL = Host(name="ideal", cpu_per_packet=0.0, cpu_per_byte=0.0)
