"""Point-to-point duplex links with bandwidth, latency, loss, and outages.

Each direction of a link serializes packets FIFO at the direction's
bandwidth: a packet cannot begin transmission until the previous one
has left the wire.  This is what makes a background trickle
reintegration *contend* with a foreground cache-miss fetch — the effect
the paper's adaptive chunk sizing exists to bound.
"""

from dataclasses import dataclass

from repro.sim.events import Timeout
from repro.sim.rand import derive_rng


@dataclass
class LinkStats:
    """Byte and packet accounting for one link direction."""

    packets_sent: int = 0
    packets_delivered: int = 0
    packets_lost: int = 0
    packets_dropped_down: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    bytes_lost: int = 0
    bytes_dropped_down: int = 0

    def reset(self):
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_lost = 0
        self.packets_dropped_down = 0
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.bytes_lost = 0
        self.bytes_dropped_down = 0


class LinkDirection:
    """One direction of a duplex link."""

    def __init__(self, sim, bandwidth_bps, latency, loss_rate,
                 bits_per_byte, rng, deliver, header_savings=0,
                 label=""):
        self.sim = sim
        self.label = label           # e.g. "laptop->server", for metrics
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency = float(latency)
        self.loss_rate = float(loss_rate)
        self.bits_per_byte = float(bits_per_byte)
        # Van Jacobson style header compression on the serial line
        # (section 4.1's "header compression as in TCP [9]"): each
        # packet sheds this many header bytes on the wire.
        self.header_savings = int(header_savings)
        self._rng = rng
        self._deliver = deliver
        self._busy_until = 0.0
        # Batched delivery (repro.sim.pool): the whole in-flight burst
        # for this direction rides one pooled wakeup and a deque
        # instead of one live Timeout per packet.  Built on first send
        # so a direction on an unpooled simulator never pays for it.
        self._lane = None
        self.up = True
        self.stats = LinkStats()
        #: Bytes scheduled for delivery but not yet delivered or
        #: dropped; together with the stats this gives byte
        #: conservation: sent = delivered + lost + dropped + in flight.
        self.bytes_in_flight = 0

    def transmission_time(self, size_bytes):
        """Seconds to serialize ``size_bytes`` onto the wire."""
        effective = max(1, size_bytes - self.header_savings)
        return effective * self.bits_per_byte / self.bandwidth_bps

    @property
    def queue_delay(self):
        """Seconds until the wire is free at the current instant."""
        return max(0.0, self._busy_until - self.sim.now)

    def send(self, datagram):
        """Enqueue ``datagram`` for transmission; returns nothing.

        Packets sent while the direction is down are silently dropped,
        as are randomly lost packets — receivers only ever see
        successful deliveries, exactly like UDP.
        """
        self.stats.packets_sent += 1
        self.stats.bytes_sent += datagram.size
        obs = self.sim.obs
        if obs.enabled:
            obs.metrics.counter("link.packets_sent", link=self.label).inc()
            obs.metrics.counter("link.bytes_sent",
                                link=self.label).inc(datagram.size)
        pool = self.sim._pool
        if not self.up:
            self.stats.packets_dropped_down += 1
            self.stats.bytes_dropped_down += datagram.size
            if obs.enabled:
                obs.metrics.counter("link.packets_dropped",
                                    link=self.label, reason="down").inc()
                obs.metrics.counter("link.bytes_dropped", link=self.label,
                                    reason="down").inc(datagram.size)
                obs.event("packet_drop", link=self.label, reason="down",
                          bytes=datagram.size)
            if pool is not None:
                pool.recycle_datagram(datagram)
            return
        start = max(self.sim.now, self._busy_until)
        done = start + self.transmission_time(datagram.size)
        self._busy_until = done
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.stats.packets_lost += 1
            self.stats.bytes_lost += datagram.size
            if obs.enabled:
                obs.metrics.counter("link.packets_dropped",
                                    link=self.label, reason="loss").inc()
                obs.event("packet_drop", link=self.label, reason="loss",
                          bytes=datagram.size)
            if pool is not None:
                pool.recycle_datagram(datagram)
            return
        arrival_delay = (done - self.sim.now) + self.latency
        self.bytes_in_flight += datagram.size
        if pool is not None:
            # Batched delivery: the direction's lane holds the burst
            # behind at most one queued wakeup.  The absolute due time
            # is computed with the exact float expression of the
            # unpooled path (now + arrival_delay), and the lane draws
            # the sequence number here at send time, so the scheduler
            # entry is tuple-identical either way.
            lane = self._lane
            if lane is None:
                lane = self._lane = pool.delivery_lane(
                    self._complete_delivery)
            lane.schedule(self.sim.now + arrival_delay, datagram)
            return
        # A timeout with a direct callback, not a per-packet delivery
        # process: delivery still runs at exactly the same instant, but
        # one heap event replaces three (bootstrap, timeout, process
        # completion) plus a generator per packet.
        timeout = Timeout(self.sim, arrival_delay)
        timeout.callbacks.append(
            lambda _evt: self._complete_delivery(datagram))

    def _complete_delivery(self, datagram):
        obs = self.sim.obs
        self.bytes_in_flight -= datagram.size
        if not self.up:
            # The link dropped while the packet was in flight.
            self.stats.packets_dropped_down += 1
            self.stats.bytes_dropped_down += datagram.size
            if obs.enabled:
                obs.metrics.counter("link.packets_dropped", link=self.label,
                                    reason="down_in_flight").inc()
                obs.metrics.counter("link.bytes_dropped", link=self.label,
                                    reason="down_in_flight"
                                    ).inc(datagram.size)
                obs.event("packet_drop", link=self.label,
                          reason="down_in_flight", bytes=datagram.size)
            pool = self.sim._pool
            if pool is not None:
                pool.recycle_datagram(datagram)
            return
        self.stats.packets_delivered += 1
        self.stats.bytes_delivered += datagram.size
        if obs.enabled:
            obs.metrics.counter("link.packets_delivered",
                                link=self.label).inc()
            obs.metrics.counter("link.bytes_delivered",
                                link=self.label).inc(datagram.size)
        self._deliver(datagram)


class Link:
    """A duplex link between two named nodes.

    Bandwidths may be asymmetric (``bandwidth_up`` is a→b).  ``up`` and
    ``down`` model intermittence; packets in flight when the link drops
    are lost.
    """

    def __init__(self, sim, node_a, node_b, bandwidth_bps,
                 latency=0.001, loss_rate=0.0, bits_per_byte=8,
                 bandwidth_up_bps=None, rng=None, deliver=None,
                 header_savings=0):
        self.sim = sim
        self.node_a = node_a
        self.node_b = node_b
        self.name = "%s<->%s" % (node_a, node_b)
        deliver = deliver or (lambda datagram: None)
        forward_label = "%s->%s" % (node_a, node_b)
        backward_label = "%s->%s" % (node_b, node_a)
        if rng is not None:
            # An explicit rng is the caller taking charge of loss
            # sequencing (e.g. the transport benchmark varies it per
            # trial); both directions share it, as before.
            forward_rng = backward_rng = rng
        else:
            # Default: independent per-direction generators named by
            # the direction label, so forward losses never perturb
            # backward draws and no two links share a sequence.
            forward_rng = self._direction_rng(forward_label)
            backward_rng = self._direction_rng(backward_label)
        self.forward = LinkDirection(
            sim, bandwidth_up_bps or bandwidth_bps, latency, loss_rate,
            bits_per_byte, forward_rng, deliver,
            header_savings=header_savings, label=forward_label)
        self.backward = LinkDirection(
            sim, bandwidth_bps, latency, loss_rate,
            bits_per_byte, backward_rng, deliver,
            header_savings=header_savings, label=backward_label)

    def _direction_rng(self, label):
        """Loss generator for one direction, keyed by its label.

        Drawn from the simulator's named streams when present (so the
        testbed seed governs it); a bare simulator falls back to a
        generator derived from the label alone, which is still
        deterministic and still independent per direction.
        """
        streams = getattr(self.sim, "rand", None)
        if streams is not None:
            return streams.stream("link.loss::%s" % label)
        return derive_rng("link.loss", label)

    @property
    def up(self):
        return self.forward.up and self.backward.up

    def set_up(self, up):
        """Bring both directions up or down."""
        changed = self.up != bool(up)
        self.forward.up = up
        self.backward.up = up
        if changed:
            obs = self.sim.obs
            if obs.enabled:
                obs.event("link_up" if up else "link_down", link=self.name)
                obs.metrics.counter(
                    "link.transitions", link=self.name,
                    to="up" if up else "down").inc()

    def set_loss_rate(self, loss_rate):
        self.forward.loss_rate = loss_rate
        self.backward.loss_rate = loss_rate

    def set_bandwidth(self, bandwidth_bps, bandwidth_up_bps=None):
        """Change link speed on the fly (e.g. roaming between networks)."""
        self.forward.bandwidth_bps = float(bandwidth_up_bps or bandwidth_bps)
        self.backward.bandwidth_bps = float(bandwidth_bps)

    def direction(self, src):
        """The direction used by packets leaving node ``src``."""
        if src == self.node_a:
            return self.forward
        if src == self.node_b:
            return self.backward
        raise ValueError("node %r is not on link %s" % (src, self.name))

    def send(self, datagram):
        self.direction(datagram.src).send(datagram)

    def outage(self, after, duration):
        """Schedule an outage starting ``after`` seconds from now."""
        self.sim.process(self._outage(after, duration), name="outage")

    def _outage(self, after, duration):
        yield self.sim.sleep(after)
        self.set_up(False)
        yield self.sim.sleep(duration)
        self.set_up(True)

    def stats(self):
        """Aggregate stats over both directions."""
        total = LinkStats()
        for direction in (self.forward, self.backward):
            total.packets_sent += direction.stats.packets_sent
            total.packets_delivered += direction.stats.packets_delivered
            total.packets_lost += direction.stats.packets_lost
            total.packets_dropped_down += direction.stats.packets_dropped_down
            total.bytes_sent += direction.stats.bytes_sent
            total.bytes_delivered += direction.stats.bytes_delivered
            total.bytes_lost += direction.stats.bytes_lost
            total.bytes_dropped_down += direction.stats.bytes_dropped_down
        return total
