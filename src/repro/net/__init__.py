"""Simulated networks: links, datagram delivery, and named profiles.

The model is deliberately simple but captures everything the paper's
phenomena depend on: serialization delay (bytes over a finite
bandwidth), propagation latency, FIFO contention between concurrent
transfers on one link, random loss, and intermittence (links going up
and down).  Bandwidth spans the paper's four orders of magnitude, from
SLIP at 1.2 Kb/s to Ethernet at 10 Mb/s.
"""

from repro.net.link import Link, LinkDirection, LinkStats
from repro.net.network import Network, Socket
from repro.net.packet import Datagram
from repro.net.profiles import (
    ETHERNET,
    ISDN,
    MODEM,
    PROFILES,
    SLIP_1200,
    WAVELAN,
    NetworkProfile,
    profile_by_name,
)

__all__ = [
    "Datagram",
    "ETHERNET",
    "ISDN",
    "Link",
    "LinkDirection",
    "LinkStats",
    "MODEM",
    "Network",
    "NetworkProfile",
    "PROFILES",
    "SLIP_1200",
    "Socket",
    "WAVELAN",
    "profile_by_name",
]
