"""Named network profiles matching the paper's experimental networks.

The paper evaluates over Ethernet (10 Mb/s), WaveLan (2 Mb/s), ISDN
(64 Kb/s, emulated), Modem (9.6 Kb/s over a phone line), and mentions
SLIP at 1.2 Kb/s as the usability floor.

Two modelling notes:

* Modem and SLIP lines are asynchronous serial: each byte costs 10 bits
  (8 data + start/stop framing), so nominal 9.6 Kb/s carries at most
  960 B/s.  This is why the paper's Figure 1 measures only ~6.8 Kb/s of
  goodput at 9.6 Kb/s nominal once packet headers are added.
* Latency is one-way propagation plus fixed per-hop processing,
  approximating the measured RTTs of each medium in 1995.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkProfile:
    """Parameters describing one class of network."""

    name: str
    label: str               # the single-letter tag the paper's graphs use
    bandwidth_bps: float     # nominal signalling rate
    latency: float           # one-way propagation + modem buffering, seconds
    loss_rate: float
    bits_per_byte: int       # 10 on async serial lines, 8 elsewhere

    def link_kwargs(self):
        """Keyword arguments for :class:`repro.net.link.Link`."""
        return {
            "bandwidth_bps": self.bandwidth_bps,
            "latency": self.latency,
            "loss_rate": self.loss_rate,
            "bits_per_byte": self.bits_per_byte,
        }

    def transmission_time(self, size_bytes):
        """Seconds to push ``size_bytes`` through this profile's wire."""
        return size_bytes * self.bits_per_byte / self.bandwidth_bps

    def __str__(self):
        if self.bandwidth_bps >= 1e6:
            rate = "%g Mb/s" % (self.bandwidth_bps / 1e6)
        else:
            rate = "%g Kb/s" % (self.bandwidth_bps / 1e3)
        return "%s (%s)" % (self.name, rate)


ETHERNET = NetworkProfile(
    name="Ethernet", label="E",
    bandwidth_bps=10e6, latency=0.0005, loss_rate=0.0, bits_per_byte=8)

WAVELAN = NetworkProfile(
    name="WaveLan", label="W",
    bandwidth_bps=2e6, latency=0.002, loss_rate=0.0, bits_per_byte=8)

ISDN = NetworkProfile(
    name="ISDN", label="I",
    bandwidth_bps=64e3, latency=0.010, loss_rate=0.0, bits_per_byte=8)

MODEM = NetworkProfile(
    name="Modem", label="M",
    bandwidth_bps=9600, latency=0.050, loss_rate=0.0, bits_per_byte=10)

SLIP_1200 = NetworkProfile(
    name="SLIP-1200", label="S",
    bandwidth_bps=1200, latency=0.050, loss_rate=0.0, bits_per_byte=10)

#: The four networks of the paper's evaluation section, fastest first.
PROFILES = (ETHERNET, WAVELAN, ISDN, MODEM)

_BY_NAME = {p.name.lower(): p for p in PROFILES + (SLIP_1200,)}


def profile_by_name(name):
    """Look up a profile by case-insensitive name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise KeyError("unknown network profile %r (have %s)"
                       % (name, ", ".join(sorted(_BY_NAME)))) from None
