#!/usr/bin/env python
"""A miniature Figure 9: a fleet of clients observed for a few days.

Runs the same fleet simulation as the Figure 9 benchmark, but small
enough to finish in seconds, and prints the per-client volume
validation statistics the paper's deployed Coda clients recorded.

Run:  python examples/fleet_study.py
"""

from repro.bench.fleet import FleetConfig, format_tables, run_fleet_study


def main():
    config = FleetConfig(desktops=5, laptops=4, days=4.0)
    desktops, laptops = run_fleet_study(config)
    for table in format_tables(desktops, laptops):
        print(table.render())
        print()
    everyone = desktops + laptops
    mean_success = sum(r.success_pct for r in everyone) / len(everyone)
    print("Across the fleet: %.1f%% of volume validations succeeded;"
          % mean_success)
    print("each success spared a batch of per-object validation RPCs —")
    print("the reason reconnecting at modem speed feels instant.")


if __name__ == "__main__":
    main()
