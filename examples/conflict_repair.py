#!/usr/bin/env python
"""Update conflicts and their repair (section 2.2).

Two clients share a volume.  The laptop disconnects and edits a file
that the desktop also edits.  On reconnection, trickle reintegration
detects the update/update conflict, confines it (the server keeps the
desktop's version; the laptop's version is parked, not lost), and the
user repairs it — once keeping "theirs", once keeping "mine".

Run:  python examples/conflict_repair.py
"""

from repro.bench.common import populate_volume, warm_cache
from repro.net import ETHERNET, Network
from repro.net.host import LAPTOP_1995, SERVER_1995
from repro.server import CodaServer
from repro.sim import Simulator
from repro.venus import Venus, VenusConfig

M = "/coda/project/shared"


def main():
    sim = Simulator()
    net = Network(sim)
    server = CodaServer(sim, net, "server", SERVER_1995)
    tree = {M + "/doc": ("dir", 0),
            M + "/doc/plan.txt": ("file", 2_000),
            M + "/doc/notes.txt": ("file", 1_000)}
    volume = populate_volume(server, M, tree)
    links, clients = {}, {}
    for name in ("desktop", "laptop"):
        links[name] = net.add_link(name, "server", profile=ETHERNET)
        clients[name] = Venus(sim, net, name, "server", LAPTOP_1995,
                              config=VenusConfig())
        warm_cache(clients[name], server, volume)
    desktop, laptop = clients["desktop"], clients["laptop"]

    def server_text(name):
        d = volume.require(volume.root.lookup("doc"))
        return bytes(volume.require(d.lookup(name)).content.data)

    def story():
        yield from desktop.connect()
        yield from laptop.connect()

        # The laptop leaves and edits both files offline.
        links["laptop"].set_up(False)
        laptop.handle_disconnection()
        yield from laptop.write_file(M + "/doc/plan.txt",
                                     b"LAPTOP: new plan")
        yield from laptop.write_file(M + "/doc/notes.txt",
                                     b"LAPTOP: notes v2")
        # Meanwhile the desktop edits the same two files.
        yield from desktop.write_file(M + "/doc/plan.txt",
                                      b"DESKTOP: better plan")
        yield from desktop.write_file(M + "/doc/notes.txt",
                                      b"DESKTOP: notes v2")

        # Reconnect: both updates conflict; both are confined.
        links["laptop"].set_up(True)
        yield from laptop.connect()
        yield sim.timeout(60.0)
        conflicts = laptop.list_conflicts()
        print("conflicts detected: %d" % len(conflicts))
        for conflict in conflicts:
            print("   ", conflict.describe())
        print("server meanwhile holds: plan=%r notes=%r"
              % (server_text("plan.txt"), server_text("notes.txt")))

        # Repair: keep theirs for the plan, mine for the notes.
        plan = [c for c in conflicts if "plan" in (c.path or "")][0]
        notes = [c for c in conflicts if "notes" in (c.path or "")][0]
        yield from laptop.repair(plan.ident, "theirs")
        yield from laptop.repair(notes.ident, "mine")
        yield sim.timeout(60.0)
        print("\nafter repair:")
        print("   plan  =", server_text("plan.txt"))
        print("   notes =", server_text("notes.txt"))
        print("   unresolved conflicts:", len(laptop.list_conflicts()))

    sim.run(sim.process(story()))


if __name__ == "__main__":
    main()
