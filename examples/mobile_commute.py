#!/usr/bin/env python
"""A day in the life of a 1995 mobile user (the paper's motivation).

Morning at the office on Ethernet (hoarding), a commute with no
network at all (emulating), an evening at home behind a 9.6 Kb/s modem
(write disconnected, updates trickling), and back to the office the
next day.  Also shows rapid cache validation doing its job: after each
reconnection, one volume-stamp RPC revalidates the whole cache.

Run:  python examples/mobile_commute.py
"""

from repro.bench.common import make_testbed, populate_volume, warm_cache
from repro.net import ETHERNET, MODEM
from repro.venus import VenusConfig

M = "/coda/usr/carol"


def switch_network(link, profile):
    link.set_bandwidth(profile.bandwidth_bps)
    link.forward.latency = link.backward.latency = profile.latency
    link.forward.bits_per_byte = profile.bits_per_byte
    link.backward.bits_per_byte = profile.bits_per_byte


def main():
    testbed = make_testbed(ETHERNET, venus_config=VenusConfig())
    tree = {M + "/thesis": ("dir", 0)}
    for chapter in range(1, 6):
        tree[M + "/thesis/ch%d.tex" % chapter] = ("file", 30_000)
    volume = populate_volume(testbed.server, M, tree)
    warm_cache(testbed.venus, testbed.server, volume)
    venus, sim, link = testbed.venus, testbed.sim, testbed.link

    venus.state.on_transition(
        lambda old, new: print("[%8.0fs]   state: %s -> %s"
                               % (sim.now, old.value, new.value)))

    def stamp_stats(label):
        stats = venus.validator.stats
        print("[%8.0fs] %s: %d volume validations, %d successes, "
              "%d object checks saved"
              % (sim.now, label, stats.attempts, stats.successes,
                 stats.objects_saved))

    def day():
        # ---- office morning -----------------------------------------
        yield from venus.connect()
        yield from venus.hoard_walk()      # caches the volume stamp
        yield from venus.write_file(M + "/thesis/ch3.tex",
                                    b"x" * 31_000)
        print("[%8.0fs] office: edited ch3 (wrote through)" % sim.now)

        # ---- commute: no network ------------------------------------
        link.set_up(False)
        venus.handle_disconnection()
        yield from venus.write_file(M + "/thesis/ch4.tex",
                                    b"y" * 32_000)
        print("[%8.0fs] train: edited ch4 against the cache (CML %dB)"
              % (sim.now, venus.cml.size_bytes))

        # ---- home: modem --------------------------------------------
        switch_network(link, MODEM)
        link.set_up(True)
        yield from venus.connect()
        stamp_stats("home reconnection")
        print("[%8.0fs] home: estimated %.0f b/s, trickling..."
              % (sim.now, venus.current_bandwidth_bps()))
        yield sim.timeout(1_200.0)
        print("[%8.0fs] home: CML now %dB (shipped %dB overnight)"
              % (sim.now, venus.cml.size_bytes,
                 venus.trickle.stats.bytes_shipped))

        # ---- overnight disconnect, office morning -------------------
        link.set_up(False)
        venus.handle_disconnection()
        yield sim.timeout(8 * 3600.0)
        switch_network(link, ETHERNET)
        link.set_up(True)
        yield from venus.connect()
        stamp_stats("office reconnection")
        yield sim.timeout(400.0)           # probe confirms Ethernet
        print("[%8.0fs] office again: state=%s, CML=%dB"
              % (sim.now, venus.state.state.value, venus.cml.size_bytes))

    sim.run(sim.process(day()))


if __name__ == "__main__":
    main()
