#!/usr/bin/env python
"""User-assisted miss handling on a weak link (section 4.4).

Recreates the paper's Figure 5/6 interactions programmatically:

1. a cache miss on a large file is refused because its service time
   exceeds the patience threshold, and is recorded;
2. the user reviews recorded misses (Figure 5) and hoards the file at
   a high priority;
3. the next hoard walk shows the Figure 6 screen: cheap fetches are
   pre-approved, expensive ones are put to the user, and a scripted
   user approves one and says "stop asking" to another.

Run:  python examples/hoard_advice.py
"""

from repro.bench.common import make_testbed, populate_volume
from repro.net import MODEM
from repro.venus import CacheMissError, ScriptedUser, VenusConfig

M = "/coda/usr/dave"


def main():
    user = ScriptedUser(
        approvals={M + "/tools/compiler": True,
                   M + "/media/demo.video": "stop"},
        hoard_additions=[(M + "/papers/s15.bib", 600, False)],
        delay_seconds=8.0)
    config = VenusConfig(start_daemons=False)
    testbed = make_testbed(MODEM, venus_config=config, user=user)
    tree = {
        M + "/papers": ("dir", 0),
        M + "/papers/s15.bib": ("file", 45_000),
        M + "/tools": ("dir", 0),
        M + "/tools/compiler": ("file", 300_000),
        M + "/tools/grep": ("file", 2_000),
        M + "/media": ("dir", 0),
        M + "/media/demo.video": ("file", 2_000_000),
    }
    populate_volume(testbed.server, M, tree)
    testbed.venus.learn_mounts(testbed.server.registry)
    venus, sim = testbed.venus, testbed.sim

    def session():
        yield from venus.connect()
        print("state=%s, estimated %.0f b/s\n"
              % (venus.state.state.value, venus.current_bandwidth_bps()))

        # A miss beyond patience: refused and recorded.
        try:
            yield from venus.read_file(M + "/papers/s15.bib",
                                       program="emacs")
        except CacheMissError as miss:
            print("MISS  %s (estimated %.0fs > patience)"
                  % (miss.path, miss.estimated_seconds))

        # A tiny file: fetched transparently despite the modem.
        content = yield from venus.read_file(M + "/tools/grep",
                                             program="csh")
        print("HIT   fetched %s (%d bytes) transparently\n"
              % (M + "/tools/grep", content.size))

        # Figure 5: review misses; the user hoards the bibliography.
        additions = yield from venus.review_misses()
        print("Figure 5 review -> hoard additions: %s" % additions)
        venus.hoard(M + "/tools/compiler", 100)
        venus.hoard(M + "/media/demo.video", 100)

        # Figure 6: the walk's interactive phase.
        report = yield from venus.hoard_walk()
        print("\nFigure 6 walk: %d candidates, %d pre-approved, "
              "%d user-approved, %d suppressed, %d fetched (%d bytes)"
              % (report.candidates, report.preapproved,
                 report.user_approved, report.suppressed,
                 report.fetched, report.fetched_bytes))
        print("user was asked about: %s" % user.asked)

        # The bibliography now reads from the cache instantly.
        content = yield from venus.read_file(M + "/papers/s15.bib",
                                             program="emacs")
        print("\nafter the walk: s15.bib read from cache (%d bytes)"
              % content.size)
        # The suppressed video will not be asked about again.
        report2 = yield from venus.hoard_walk()
        print("next walk asks nothing further: candidates=%d, asked=%s"
              % (report2.candidates, user.asked))

    sim.run(sim.process(session()))


if __name__ == "__main__":
    main()
