#!/usr/bin/env python
"""Quickstart: a Coda client and server in thirty lines.

Builds a one-client testbed on Ethernet, writes and reads files
through Venus, disconnects, keeps working against the cache, and
reintegrates on reconnection.

Run:  python examples/quickstart.py
"""

from repro.net import ETHERNET, Network
from repro.net.host import LAPTOP_1995, SERVER_1995
from repro.server import CodaServer
from repro.sim import Simulator
from repro.venus import Venus, VenusConfig


def main():
    sim = Simulator()
    net = Network(sim)
    link = net.add_link("laptop", "server", profile=ETHERNET)

    server = CodaServer(sim, net, "server", SERVER_1995)
    server.create_volume("u.alice", "/coda/usr/alice")

    venus = Venus(sim, net, "laptop", "server", LAPTOP_1995,
                  config=VenusConfig())
    venus.learn_mounts(server.registry)

    def session():
        # Come online: Ethernet is strong, so Venus ends up hoarding.
        yield from venus.connect()
        print("[%7.2fs] connected, state = %s"
              % (sim.now, venus.state.state.value))

        # Ordinary connected use: updates write through to the server.
        yield from venus.mkdir("/coda/usr/alice/notes")
        yield from venus.write_file("/coda/usr/alice/notes/todo.txt",
                                    b"- reproduce a classic paper\n")
        names = yield from venus.readdir("/coda/usr/alice/notes")
        print("[%7.2fs] wrote notes/, contents: %s" % (sim.now, names))

        # The network goes away mid-session...
        link.set_up(False)
        yield from venus.write_file("/coda/usr/alice/notes/todo.txt",
                                    b"- reproduce a classic paper\n"
                                    b"- survive a disconnection\n")
        print("[%7.2fs] disconnected; state = %s, CML holds %d record(s)"
              % (sim.now, venus.state.state.value, len(venus.cml)))

        # ...but cached data keeps working.
        content = yield from venus.read_file(
            "/coda/usr/alice/notes/todo.txt")
        print("[%7.2fs] read %d bytes from the cache while offline"
              % (sim.now, content.size))

        # Reconnect: validation + reintegration bring us back to
        # hoarding with an empty log.
        link.set_up(True)
        yield from venus.connect()
        print("[%7.2fs] reconnected, state = %s, CML holds %d record(s)"
              % (sim.now, venus.state.state.value, len(venus.cml)))

    sim.run(sim.process(session()))
    print("done at simulated t=%.2fs" % sim.now)


if __name__ == "__main__":
    main()
