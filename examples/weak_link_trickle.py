#!/usr/bin/env python
"""Trickle reintegration over a 9.6 Kb/s modem (sections 4.3.3-4.3.5).

A write-disconnected client edits files while the trickle daemon
propagates aged updates in the background.  Watch the mechanisms at
work:

* a file overwritten within the aging window never touches the wire
  (log optimization);
* the backlog drains in adaptively sized chunks;
* a file larger than one chunk ships as resumable fragments;
* a foreground cache miss is served promptly even while reintegration
  is running.

Run:  python examples/weak_link_trickle.py
"""

from repro.bench.common import make_testbed, populate_volume, warm_cache
from repro.fs import SyntheticContent
from repro.net import MODEM
from repro.venus import VenusConfig

M = "/coda/usr/bob"


def main():
    config = VenusConfig(aging_window=300.0, chunk_seconds=30.0,
                         daemon_period=5.0)
    testbed = make_testbed(MODEM, venus_config=config)
    tree = {
        M + "/work": ("dir", 0),
        M + "/work/draft.tex": ("file", 15_000),
        M + "/work/figure.eps": ("file", 40_000),
    }
    volume = populate_volume(testbed.server, M, tree)
    warm_cache(testbed.venus, testbed.server, volume)
    venus = testbed.venus
    sim = testbed.sim

    def on_server(name):
        d = volume.require(volume.root.lookup("work"))
        return d.lookup(name) is not None

    def report(label):
        stats = venus.trickle.stats
        print("[%7.0fs] %-34s CML=%5dB shipped=%6dB chunks=%d "
              "fragments=%d optimized=%dB"
              % (sim.now, label, venus.cml.size_bytes,
                 stats.bytes_shipped, stats.chunks_committed,
                 stats.fragments_shipped,
                 venus.cml.stats.optimized_bytes))

    def session():
        yield from venus.connect()
        print("state = %s at %.0f b/s estimated"
              % (venus.state.state.value, venus.current_bandwidth_bps()))

        # Edit a draft twice within the aging window: the first store
        # is cancelled before it ever reaches the modem.
        yield from venus.write_file(M + "/work/draft.tex",
                                    SyntheticContent(16_000))
        report("first save of draft.tex")
        yield sim.timeout(120.0)
        yield from venus.write_file(M + "/work/draft.tex",
                                    SyntheticContent(17_000))
        report("second save (first one cancelled)")

        # A large result file: bigger than one chunk, so it will ship
        # as fragments once it ages.
        yield from venus.write_file(M + "/work/results.dat",
                                    SyntheticContent(120_000))
        report("wrote 120 KB results.dat")

        # Let aging and trickle run.
        yield sim.timeout(600.0)
        report("aging window passed")

        # Foreground miss while reintegration is busy: the chunk bound
        # keeps the wait tolerable.
        entry = yield from venus.stat(M + "/work/figure.eps")
        venus.cache.remove(entry.fid)
        venus.hoard(M + "/work/figure.eps", 900)
        start = sim.now
        yield from venus.read_file(M + "/work/figure.eps")
        print("[%7.0fs] foreground miss on figure.eps served in %.0fs"
              % (sim.now, sim.now - start))

        yield sim.timeout(900.0)
        report("background drain complete")
        print("draft.tex on server: %s   results.dat on server: %s"
              % (on_server("draft.tex"), on_server("results.dat")))

    sim.run(sim.process(session()))


if __name__ == "__main__":
    main()
