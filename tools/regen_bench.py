"""Regenerate BENCH_perf.json (schema repro.perf/5).

The fleet-64 grid is measured best-of-5 with trials interleaved
across configs, so slow-machine drift hits every config evenly
instead of biasing whichever ran last.  The grid covers the pooled
row for both queue kinds (the queue-swap gate) plus the unpooled
calendar row (the pooling gate); the heap pooling delta is within
box noise either way, so no heap/off row is committed — see the
README's Performance notes.  All other rows are single runs under
the session-default calendar/pooled configuration.

Usage: PYTHONPATH=src python tools/regen_bench.py
"""

from repro.perf.runner import run_perf, write_bench


def one(name, **kw):
    result = run_perf(name, profile=False, **kw)
    print("done %-24s %-26s %12.0f ev/s"
          % (name, kw, result.events_per_sec), flush=True)
    return result


def main():
    results = []
    for name in ("trickle-outage", "transport-sweep", "fleet-golden",
                 "fleet-8", "fleet-32"):
        results.append(one(name, queue="calendar", pooling="on"))

    configs = [("heap", "on"), ("calendar", "off"), ("calendar", "on")]
    best = {}
    for trial in range(5):
        for queue, pooling in configs:
            r = one("fleet-64", queue=queue, pooling=pooling)
            key = (queue, pooling)
            if key not in best or r.events_per_sec > best[key].events_per_sec:
                best[key] = r
    results.extend(best[key] for key in configs)

    for workers in (1, 4):
        results.append(one("fleetd-64", queue="calendar", pooling="on",
                           workers=workers))
    for workers in (1, 2, 4, 8):
        results.append(one("fleet-256", queue="calendar", pooling="on",
                           workers=workers))
    for workers in (1, 2, 4, 8):
        results.append(one("fleet-1024", queue="calendar", pooling="on",
                           workers=workers))
    for name in ("ckpt-fleet-256", "ckpt-fleet-256-resident"):
        results.append(one(name, queue="calendar", pooling="on"))

    print("wrote", write_bench(results))


if __name__ == "__main__":
    main()
