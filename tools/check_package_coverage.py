"""Enforce per-package coverage floors from a coverage.py JSON report.

Usage: python tools/check_package_coverage.py coverage.json

The global ``--cov-fail-under`` gate catches wholesale regressions;
this script stops a PR from funding the global number with easy lines
in one package while another package rots.  Floors are set a few
points below the levels measured when the gate was introduced (tier-1
suite, 2026-08) so routine refactors don't trip them.
"""

import json
import sys

#: Package (directory under src/repro) -> minimum percent covered.
#: "(top)" covers the top-level modules (cli.py, __init__.py, ...).
FLOORS = {
    "(top)": 60.0,
    "analysis": 72.0,
    "bench": 30.0,      # paper-scale tables run in benchmarks/, not tier-1
    "ckpt": 90.0,
    "core": 85.0,
    "faults": 90.0,
    "fleetd": 90.0,
    "fs": 85.0,
    "net": 85.0,
    "obs": 90.0,
    "perf": 35.0,       # macro-scenarios run via `repro perf`, not tier-1
    "rpc2": 90.0,
    "server": 85.0,
    "sim": 90.0,
    "spec": 90.0,
    "trace": 85.0,
    "venus": 85.0,
}

#: Module (path suffix under src/) -> minimum percent covered.  For
#: files whose correctness burden is higher than their package's
#: floor: the scheduler layer is proven by tests, not review, so its
#: own coverage cannot hide behind the sim package aggregate.
MODULE_FLOORS = {
    "repro/sim/queue.py": 90.0,
    "repro/sim/pool.py": 90.0,
}


def module_of(path):
    """Map a measured file path to its repo-relative module suffix."""
    path = path.replace("\\", "/")
    idx = path.rfind("repro/")
    return path[idx:] if idx >= 0 else path


def package_of(path):
    """Map a measured file path to its package name."""
    path = path.replace("\\", "/")
    marker = "repro/"
    idx = path.rfind(marker)
    rel = path[idx + len(marker):] if idx >= 0 else path
    return rel.split("/")[0] if "/" in rel else "(top)"


def main(argv):
    report_path = argv[1] if len(argv) > 1 else "coverage.json"
    with open(report_path) as fh:
        report = json.load(fh)

    totals = {}
    modules = {}
    for path, data in report["files"].items():
        summary = data["summary"]
        pkg = totals.setdefault(package_of(path), [0, 0])
        pkg[0] += summary["covered_lines"]
        pkg[1] += summary["num_statements"]
        suffix = module_of(path)
        if suffix in MODULE_FLOORS:
            modules[suffix] = summary["percent_covered"]

    failed = []
    print("%-12s %8s %8s %7s %7s" % ("package", "covered", "stmts",
                                     "pct", "floor"))
    for package in sorted(totals):
        covered, statements = totals[package]
        pct = 100.0 * covered / statements if statements else 100.0
        floor = FLOORS.get(package)
        print("%-12s %8d %8d %6.1f%% %6s" % (
            package, covered, statements, pct,
            "%.0f%%" % floor if floor is not None else "-"))
        if floor is not None and pct < floor:
            failed.append((package, pct, floor))

    for suffix in sorted(MODULE_FLOORS):
        floor = MODULE_FLOORS[suffix]
        if suffix not in modules:
            failed.append((suffix, 0.0, floor))
            continue
        pct = modules[suffix]
        print("%-24s %24.1f%% %6s" % (suffix, pct, "%.0f%%" % floor))
        if pct < floor:
            failed.append((suffix, pct, floor))

    missing = sorted(set(FLOORS) - set(totals))
    if missing:
        print("note: no measured files for package(s): %s"
              % ", ".join(missing))

    if failed:
        for package, pct, floor in failed:
            print("FAIL %s: %.1f%% < floor %.0f%%" % (package, pct, floor))
        return 1
    print("package coverage: all floors met")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
